#include "stream/columnar.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "ser/chunk_writer.h"
#include "ser/codec.h"
#include "stream/kernels.h"

namespace jarvis::stream {

namespace {

/// True when the record can live in the dense columns: kData kind and an
/// exact arity/type match against the schema. kPartial rows always take the
/// fallback lane even when their fields happen to match — their kind bit
/// must survive every structural edit, and the row lane does that for free.
bool IsDenseRow(const Record& rec, const Schema& schema) {
  return rec.kind == RecordKind::kData && ConformsToSchema(rec, schema);
}

}  // namespace

void ColumnarBatch::Reset(Schema schema) {
  schema_ = std::move(schema);
  const size_t nf = schema_.num_fields();
  // Growing back past a projection: refill from recycled columns, matching
  // types so the reclaimed buffer is the one with useful capacity.
  while (columns_.size() < nf && !spares_.empty()) {
    const ValueType want = schema_.field(columns_.size()).type;
    size_t pick = spares_.size() - 1;  // any spare if no type match
    for (size_t s = 0; s < spares_.size(); ++s) {
      if (spares_[s].type == want) {
        pick = s;
        break;
      }
    }
    columns_.push_back(std::move(spares_[pick]));
    spares_.erase(spares_.begin() + pick);
  }
  columns_.resize(nf);
  for (size_t j = 0; j < nf; ++j) {
    columns_[j].type = schema_.field(j).type;
    columns_[j].Clear();
  }
  event_time_.clear();
  window_start_.clear();
  is_dense_.clear();
  fallback_.clear();
}

void ColumnarBatch::Clear() {
  for (Column& c : columns_) c.Clear();
  event_time_.clear();
  window_start_.clear();
  is_dense_.clear();
  fallback_.clear();
}

void ColumnarBatch::AppendRow(Record&& rec) {
  if (!IsDenseRow(rec, schema_)) {
    is_dense_.push_back(0);
    fallback_.push_back(std::move(rec));
    return;
  }
  event_time_.push_back(rec.event_time);
  window_start_.push_back(rec.window_start);
  for (size_t j = 0; j < columns_.size(); ++j) {
    Column& col = columns_[j];
    switch (col.type) {
      case ValueType::kInt64:
        col.i64.push_back(*std::get_if<int64_t>(&rec.fields[j]));
        break;
      case ValueType::kDouble:
        col.f64.push_back(*std::get_if<double>(&rec.fields[j]));
        break;
      case ValueType::kString:
        col.str.push_back(std::move(*std::get_if<std::string>(&rec.fields[j])));
        break;
    }
  }
  is_dense_.push_back(1);
}

void ColumnarBatch::AppendRows(RecordBatch&& rows) {
  // Row-major transfer: each record's fields are touched while the record
  // is cache-hot (a column-major second pass re-walks ~200B/record of
  // pointer-chasing layout per column and loses more to misses than the
  // hoisted type switch saves — measured, not guessed).
  GrowForAppend(&is_dense_, rows.size());
  GrowForAppend(&event_time_, rows.size());
  GrowForAppend(&window_start_, rows.size());
  for (Record& rec : rows) AppendRow(std::move(rec));
  rows.clear();
}

ColumnarBatch ColumnarBatch::FromRows(RecordBatch&& rows, Schema schema) {
  ColumnarBatch batch(std::move(schema));
  batch.AppendRows(std::move(rows));
  return batch;
}

void ColumnarBatch::AppendBatch(ColumnarBatch&& other) {
  if (other.empty()) return;
  if (!(schema_ == other.schema_)) {
    // Lossless degradation: a mismatched producer goes through the exact
    // row conversion instead of corrupting column types.
    RecordBatch rows;
    other.MoveToRows(&rows);
    AppendRows(std::move(rows));
    return;
  }
  if (empty()) {
    // Donor buffers are adopted wholesale; ours (empty, but possibly with
    // capacity) ride back in `other` for the caller to reuse.
    std::swap(columns_, other.columns_);
    std::swap(event_time_, other.event_time_);
    std::swap(window_start_, other.window_start_);
    std::swap(is_dense_, other.is_dense_);
    std::swap(fallback_, other.fallback_);
    return;
  }
  event_time_.insert(event_time_.end(), other.event_time_.begin(),
                     other.event_time_.end());
  window_start_.insert(window_start_.end(), other.window_start_.begin(),
                       other.window_start_.end());
  for (size_t j = 0; j < columns_.size(); ++j) {
    Column& dst = columns_[j];
    Column& src = other.columns_[j];
    switch (dst.type) {
      case ValueType::kInt64:
        dst.i64.insert(dst.i64.end(), src.i64.begin(), src.i64.end());
        break;
      case ValueType::kDouble:
        dst.f64.insert(dst.f64.end(), src.f64.begin(), src.f64.end());
        break;
      case ValueType::kString:
        dst.str.insert(dst.str.end(),
                       std::make_move_iterator(src.str.begin()),
                       std::make_move_iterator(src.str.end()));
        break;
    }
  }
  is_dense_.insert(is_dense_.end(), other.is_dense_.begin(),
                   other.is_dense_.end());
  fallback_.insert(fallback_.end(),
                   std::make_move_iterator(other.fallback_.begin()),
                   std::make_move_iterator(other.fallback_.end()));
  other.Clear();
}

Record ColumnarBatch::MaterializeDense(size_t d) {
  Record rec;
  rec.event_time = event_time_[d];
  rec.window_start = window_start_[d];
  rec.fields.reserve(columns_.size());
  for (Column& col : columns_) {
    switch (col.type) {
      case ValueType::kInt64:
        rec.fields.emplace_back(col.i64[d]);
        break;
      case ValueType::kDouble:
        rec.fields.emplace_back(col.f64[d]);
        break;
      case ValueType::kString:
        rec.fields.emplace_back(std::move(col.str[d]));
        break;
    }
  }
  return rec;
}

void ColumnarBatch::MoveToRows(RecordBatch* out) {
  GrowForAppend(out, num_rows());
  size_t d = 0, fb = 0;
  for (uint8_t dense : is_dense_) {
    if (dense) {
      out->push_back(MaterializeDense(d++));
    } else {
      out->push_back(std::move(fallback_[fb++]));
    }
  }
  Clear();
}

namespace {

/// Stable in-place compaction of one array: keeps a[d] iff keep[d]. The
/// type-specific instantiations keep the per-element loop free of dispatch.
template <typename T>
void CompactArray(std::vector<T>* a, const uint8_t* keep, size_t n) {
  size_t w = 0;
  for (size_t d = 0; d < n; ++d) {
    if (!keep[d]) continue;
    if (w != d) (*a)[w] = std::move((*a)[d]);
    ++w;
  }
  a->resize(w);
}

}  // namespace

void ColumnarBatch::Retain(const uint8_t* keep_dense,
                           const uint8_t* keep_fallback) {
  // Column-major stable compaction: each 8-byte array goes through the
  // dispatched shuffle-table kernel (stream/kernels.h), strings keep the
  // move-based scalar pass. All linear, no allocation in steady state.
  const kernels::KernelTable& k = kernels::Active();
  const size_t nd = num_dense();
  event_time_.resize(k.compact64(event_time_.data(), keep_dense, nd));
  window_start_.resize(k.compact64(window_start_.data(), keep_dense, nd));
  for (Column& col : columns_) {
    switch (col.type) {
      case ValueType::kInt64:
        col.i64.resize(k.compact64(col.i64.data(), keep_dense, nd));
        break;
      case ValueType::kDouble:
        col.f64.resize(k.compact64(col.f64.data(), keep_dense, nd));
        break;
      case ValueType::kString:
        CompactArray(&col.str, keep_dense, nd);
        break;
    }
  }

  size_t wf = 0;
  const size_t nf = fallback_.size();
  for (size_t f = 0; f < nf; ++f) {
    if (!keep_fallback[f]) continue;
    if (wf != f) fallback_[wf] = std::move(fallback_[f]);
    ++wf;
  }
  fallback_.resize(wf);

  // The per-row mask is the per-lane masks expanded through the density
  // bitmap; the bitmap then compacts under it like any other byte array.
  keep_rows_.resize(is_dense_.size());
  k.density_expand(is_dense_.data(), is_dense_.size(), keep_dense,
                   keep_fallback, keep_rows_.data());
  is_dense_.resize(
      k.compact8(is_dense_.data(), keep_rows_.data(), is_dense_.size()));
}

Status ColumnarBatch::SelectColumns(const std::vector<size_t>& indices) {
  for (size_t i : indices) {
    if (i >= columns_.size()) {
      return Status::OutOfRange("project index out of range");
    }
  }
  // Column-pointer swaps: each kept column moves once. An index that appears
  // more than once copies so later uses see intact data.
  std::vector<size_t> uses(columns_.size(), 0);
  for (size_t i : indices) ++uses[i];
  std::vector<Column> selected;
  selected.reserve(indices.size());
  for (size_t i : indices) {
    if (uses[i] > 1) {
      selected.push_back(columns_[i]);
    } else {
      selected.push_back(std::move(columns_[i]));
    }
  }
  // Dropped columns keep their buffers in the spare pool; the next Reset
  // back to a wider schema reclaims them instead of reallocating.
  for (size_t j = 0; j < columns_.size(); ++j) {
    if (uses[j] == 0) {
      columns_[j].Clear();
      spares_.push_back(std::move(columns_[j]));
    }
  }
  columns_ = std::move(selected);
  schema_ = schema_.Select(indices);
  return Status::OK();
}

void ColumnarBatch::MoveDenseRowTo(size_t d, ColumnarBatch* dst) {
  dst->event_time_.push_back(event_time_[d]);
  dst->window_start_.push_back(window_start_[d]);
  for (size_t j = 0; j < columns_.size(); ++j) {
    Column& src = columns_[j];
    Column& col = dst->columns_[j];
    switch (src.type) {
      case ValueType::kInt64:
        col.i64.push_back(src.i64[d]);
        break;
      case ValueType::kDouble:
        col.f64.push_back(src.f64[d]);
        break;
      case ValueType::kString:
        col.str.push_back(std::move(src.str[d]));
        break;
    }
  }
  dst->is_dense_.push_back(1);
}

void ColumnarBatch::Partition(const uint8_t* decisions,
                              ColumnarBatch* forwarded, RecordBatch* drained) {
  GrowForAppend(drained, num_rows());
  size_t d = 0, fb = 0;
  for (size_t r = 0; r < is_dense_.size(); ++r) {
    if (is_dense_[r]) {
      if (decisions[r]) {
        MoveDenseRowTo(d++, forwarded);
      } else {
        drained->push_back(MaterializeDense(d++));
      }
    } else {
      if (decisions[r]) {
        forwarded->is_dense_.push_back(0);
        forwarded->fallback_.push_back(std::move(fallback_[fb++]));
      } else {
        drained->push_back(std::move(fallback_[fb++]));
      }
    }
  }
  Clear();
}

void ColumnarBatch::Partition(const uint8_t* decisions,
                              ColumnarBatch* forwarded,
                              ColumnarBatch* drained) {
  size_t d = 0, fb = 0;
  for (size_t r = 0; r < is_dense_.size(); ++r) {
    ColumnarBatch* dst = decisions[r] ? forwarded : drained;
    if (is_dense_[r]) {
      MoveDenseRowTo(d++, dst);
    } else {
      dst->is_dense_.push_back(0);
      dst->fallback_.push_back(std::move(fallback_[fb++]));
    }
  }
  Clear();
}

void ColumnarBatch::SplitFront(size_t n, ColumnarBatch* front) {
  front->Reset(schema_);
  if (n == 0) return;
  if (n >= num_rows()) {
    // Whole-queue take: swap the buffers so both sides keep their
    // capacities for reuse.
    std::swap(front->columns_, columns_);
    std::swap(front->event_time_, event_time_);
    std::swap(front->window_start_, window_start_);
    std::swap(front->is_dense_, is_dense_);
    std::swap(front->fallback_, fallback_);
    return;
  }
  size_t nd = 0;
  for (size_t r = 0; r < n; ++r) nd += is_dense_[r];
  const size_t nf = n - nd;

  front->event_time_.assign(event_time_.begin(), event_time_.begin() + nd);
  front->window_start_.assign(window_start_.begin(),
                              window_start_.begin() + nd);
  event_time_.erase(event_time_.begin(), event_time_.begin() + nd);
  window_start_.erase(window_start_.begin(), window_start_.begin() + nd);
  for (size_t j = 0; j < columns_.size(); ++j) {
    Column& src = columns_[j];
    Column& dst = front->columns_[j];
    switch (src.type) {
      case ValueType::kInt64:
        dst.i64.assign(src.i64.begin(), src.i64.begin() + nd);
        src.i64.erase(src.i64.begin(), src.i64.begin() + nd);
        break;
      case ValueType::kDouble:
        dst.f64.assign(src.f64.begin(), src.f64.begin() + nd);
        src.f64.erase(src.f64.begin(), src.f64.begin() + nd);
        break;
      case ValueType::kString:
        dst.str.assign(std::make_move_iterator(src.str.begin()),
                       std::make_move_iterator(src.str.begin() + nd));
        src.str.erase(src.str.begin(), src.str.begin() + nd);
        break;
    }
  }
  front->fallback_.assign(std::make_move_iterator(fallback_.begin()),
                          std::make_move_iterator(fallback_.begin() + nf));
  fallback_.erase(fallback_.begin(), fallback_.begin() + nf);
  front->is_dense_.assign(is_dense_.begin(), is_dense_.begin() + n);
  is_dense_.erase(is_dense_.begin(), is_dense_.begin() + n);
}

void ColumnarBatch::MoveDenseRange(size_t d0, size_t d1, ColumnarBatch* dst) {
  if (d0 >= d1) return;
  const size_t n = d1 - d0;
  dst->event_time_.insert(dst->event_time_.end(), event_time_.begin() + d0,
                          event_time_.begin() + d1);
  dst->window_start_.insert(dst->window_start_.end(),
                            window_start_.begin() + d0,
                            window_start_.begin() + d1);
  for (size_t j = 0; j < columns_.size(); ++j) {
    Column& src = columns_[j];
    Column& col = dst->columns_[j];
    switch (src.type) {
      case ValueType::kInt64:
        col.i64.insert(col.i64.end(), src.i64.begin() + d0,
                       src.i64.begin() + d1);
        break;
      case ValueType::kDouble:
        col.f64.insert(col.f64.end(), src.f64.begin() + d0,
                       src.f64.begin() + d1);
        break;
      case ValueType::kString:
        col.str.insert(col.str.end(),
                       std::make_move_iterator(src.str.begin() + d0),
                       std::make_move_iterator(src.str.begin() + d1));
        break;
    }
  }
  dst->is_dense_.insert(dst->is_dense_.end(), n, 1);
}

uint64_t ColumnarBatch::RowWireBytes() const {
  using ser::VarIntSize;
  using ser::ZigZagEncode;
  uint64_t total = 0;
  const size_t nd = num_dense();
  // Per dense row: kind byte + field-count varint + the two time varints.
  total += nd * (1 + VarIntSize(columns_.size()));
  for (size_t d = 0; d < nd; ++d) {
    total += VarIntSize(ZigZagEncode(event_time_[d])) +
             VarIntSize(ZigZagEncode(window_start_[d]));
  }
  for (const Column& col : columns_) {
    switch (col.type) {
      case ValueType::kInt64:
        for (int64_t v : col.i64) total += 1 + VarIntSize(ZigZagEncode(v));
        break;
      case ValueType::kDouble:
        total += nd * (1 + 8);
        break;
      case ValueType::kString:
        for (const std::string& s : col.str) {
          total += 1 + VarIntSize(s.size()) + s.size();
        }
        break;
    }
  }
  for (const Record& rec : fallback_) total += WireSize(rec);
  return total;
}

// ---------------------------------------------------------------------------
// Columnar drain wire format
// ---------------------------------------------------------------------------

namespace {

// Per-row flag values carried in the RLE section. Dense rows are kData by
// construction, so the two bits are mutually exclusive.
constexpr uint8_t kColFlagPartial = 0x01;
constexpr uint8_t kColFlagDense = 0x02;

// String columns: per-column encoding marker.
constexpr uint8_t kStrPlain = 0;
constexpr uint8_t kStrDict = 1;

uint8_t RowFlags(const ColumnarBatch& batch, size_t row, size_t* fb) {
  if (batch.density()[row]) return kColFlagDense;
  const Record& rec = batch.fallback()[(*fb)++];
  return rec.kind == RecordKind::kPartial ? kColFlagPartial : 0;
}

/// Block size for the kernelized delta+zigzag varint column steps: values
/// are staged (or encoded) kEncBlock at a time through stack buffers, so
/// column emission is a sequence of KernelTable::delta_varint_encode calls
/// plus bulk byte appends, with no per-value writer hop.
constexpr size_t kEncBlock = 512;

/// Emits one time column (over ALL rows in row order, merging the packed
/// dense array with the fallback records) as delta + zigzag varints. The
/// all-dense fast path encodes straight from the packed array; mixed
/// batches stage each block through a gather buffer first. Delta arithmetic
/// lives in ser::DeltaEncoder/the kernels: it goes through uint64_t so
/// wraparound is well-defined and the decoder's addition inverts it exactly.
template <typename GetFallbackTime>
void WriteTimeColumn(const ColumnarBatch& batch,
                     const std::vector<Micros>& dense_times,
                     GetFallbackTime get_fb, ser::ChunkWriter* w) {
  const kernels::KernelTable& k = kernels::Active();
  uint8_t enc[kEncBlock * 10];
  uint64_t prev = 0;
  if (batch.num_fallback() == 0) {
    const int64_t* p = dense_times.data();  // Micros is int64_t
    const size_t n = dense_times.size();
    for (size_t off = 0; off < n; off += kEncBlock) {
      const size_t m = std::min(kEncBlock, n - off);
      w->Bytes(enc, k.delta_varint_encode(p + off, m, &prev, enc));
    }
    return;
  }
  int64_t vals[kEncBlock];
  const std::vector<uint8_t>& density = batch.density();
  const size_t n = density.size();
  size_t d = 0, fb = 0;
  for (size_t r = 0; r < n;) {
    size_t m = 0;
    for (; m < kEncBlock && r < n; ++r) {
      vals[m++] = density[r] ? dense_times[d++] : get_fb(batch.fallback()[fb++]);
    }
    w->Bytes(enc, k.delta_varint_encode(vals, m, &prev, enc));
  }
}

void WriteStringColumn(const std::vector<std::string>& values,
                       ser::ChunkWriter* w) {
  using ser::VarIntSize;
  // First-occurrence dictionary, u8 codes. Worth it only when the column is
  // low-cardinality; the encoder compares exact encoded sizes and keeps the
  // plain layout otherwise. Codes are captured during the sizing scan so
  // the emit pass never re-hashes a value.
  std::unordered_map<std::string_view, uint8_t> dict;
  std::vector<const std::string*> entries;
  std::vector<uint8_t> codes;
  codes.reserve(values.size());
  size_t plain_bytes = 0, dict_entry_bytes = 0;
  bool dict_viable = true;
  for (const std::string& s : values) {
    plain_bytes += VarIntSize(s.size()) + s.size();
    if (!dict_viable) continue;
    const auto [it, inserted] =
        dict.try_emplace(s, static_cast<uint8_t>(dict.size()));
    if (inserted) {
      if (dict.size() > 255) {
        dict_viable = false;
        continue;
      }
      entries.push_back(&s);
      dict_entry_bytes += VarIntSize(s.size()) + s.size();
    }
    codes.push_back(it->second);
  }
  const size_t dict_bytes =
      VarIntSize(dict.size()) + dict_entry_bytes + values.size();
  if (dict_viable && dict_bytes < plain_bytes) {
    w->Byte(kStrDict);
    w->VarU64(dict.size());
    for (const std::string* s : entries) w->String(*s);
    for (uint8_t code : codes) w->Byte(code);
    return;
  }
  w->Byte(kStrPlain);
  for (const std::string& s : values) w->String(s);
}

/// Decodes the version-independent frame body (everything after the version
/// byte / integrity header). Shared by the v3 and legacy-v2 read paths.
Status DecodeColumnarBody(ser::BufferReader* in, RecordBatch* out);

}  // namespace

size_t SerializeColumnar(const ColumnarBatch& batch, ser::BufferWriter* out) {
  const size_t start = out->size();
  const size_t n = batch.num_rows();
  const size_t nf = batch.num_columns();
  out->Reserve(32 + nf + n * 4);
  out->PutU8(kColumnarFormatVersion);
  // Integrity header: payload length + checksum, patched in place once the
  // body is written (the encoder stays single-pass, no staging buffer).
  const size_t len_pos = out->size();
  out->PutU32(0);
  out->PutU32(0);
  const size_t body_start = out->size();
  out->PutVarU64(n);
  out->PutVarU64(nf);
  for (size_t j = 0; j < nf; ++j) {
    out->PutU8(static_cast<uint8_t>(batch.schema().field(j).type));
  }

  ser::ChunkWriter w(out);

  // Row flags, run-length encoded: long stretches of conforming data rows
  // (the common case) cost two bytes total instead of one byte per record.
  {
    size_t fb = 0;
    size_t run_start = 0;
    uint8_t run_flag = 0;
    for (size_t r = 0; r < n; ++r) {
      const uint8_t f = RowFlags(batch, r, &fb);
      if (r == 0) {
        run_flag = f;
        continue;
      }
      if (f != run_flag) {
        w.Byte(run_flag);
        w.VarU64(r - run_start);
        run_start = r;
        run_flag = f;
      }
    }
    if (n > 0) {
      w.Byte(run_flag);
      w.VarU64(n - run_start);
    }
  }

  // Time columns over all rows; near-monotone event times delta down to one
  // or two bytes each.
  WriteTimeColumn(batch, batch.event_times(),
                  [](const Record& r) { return r.event_time; }, &w);
  WriteTimeColumn(batch, batch.window_starts(),
                  [](const Record& r) { return r.window_start; }, &w);

  // Dense value columns with per-type encodings.
  const size_t ndense = batch.num_dense();
  for (size_t j = 0; j < nf; ++j) {
    const Column& col = batch.column(j);
    switch (col.type) {
      case ValueType::kInt64: {
        const kernels::KernelTable& k = kernels::Active();
        uint8_t enc[kEncBlock * 10];
        uint64_t prev = 0;
        for (size_t off = 0; off < ndense; off += kEncBlock) {
          const size_t m = std::min(kEncBlock, ndense - off);
          w.Bytes(enc, k.delta_varint_encode(col.i64.data() + off, m, &prev,
                                             enc));
        }
        break;
      }
      case ValueType::kDouble:
        for (double v : col.f64) w.Double(v);
        break;
      case ValueType::kString:
        if (ndense > 0) WriteStringColumn(col.str, &w);
        break;
    }
  }

  // Fallback rows carry their own tags, exactly like the record format.
  for (const Record& rec : batch.fallback()) {
    w.VarU64(rec.fields.size());
    for (const Value& v : rec.fields) WriteTaggedValue(v, &w);
  }
  w.Flush();
  const size_t body_len = out->size() - body_start;
  out->PatchU32(len_pos, static_cast<uint32_t>(body_len));
  out->PatchU32(len_pos + 4,
                ser::FrameChecksum(out->data().data() + body_start, body_len));
  return out->size() - start;
}

Status DeserializeColumnar(ser::BufferReader* in, RecordBatch* out) {
  uint8_t version;
  JARVIS_RETURN_IF_ERROR(in->GetU8(&version));
  if (version == kColumnarFormatVersionLegacy) {
    // Pre-checksum frames: decode the bare body (rolling-upgrade path).
    return DecodeColumnarBody(in, out);
  }
  if (version != kColumnarFormatVersion) {
    return Status::SerializationError("bad columnar format version");
  }
  uint32_t body_len, crc;
  JARVIS_RETURN_IF_ERROR(in->GetU32(&body_len));
  JARVIS_RETURN_IF_ERROR(in->GetU32(&crc));
  if (body_len > in->remaining()) {
    return Status::SerializationError("truncated columnar frame");
  }
  if (ser::FrameChecksum(in->cursor(), body_len) != crc) {
    return Status::SerializationError("columnar frame checksum mismatch");
  }
  // Decode against a reader bounded to the declared payload: a corrupt body
  // can never read past its frame, and a short decode (trailing garbage
  // inside the frame) is itself corruption.
  ser::BufferReader body(in->cursor(), body_len);
  JARVIS_RETURN_IF_ERROR(DecodeColumnarBody(&body, out));
  if (!body.AtEnd()) {
    return Status::SerializationError("columnar frame payload length mismatch");
  }
  in->Advance(body_len);
  return Status::OK();
}

namespace {

Status DecodeColumnarBody(ser::BufferReader* in, RecordBatch* out) {
  uint64_t n;
  JARVIS_RETURN_IF_ERROR(in->GetVarU64(&n));
  // Every row costs at least its two time varints downstream of the RLE
  // flags, so a count beyond the remaining bytes is corrupt (DoS guard).
  if (n > in->remaining()) {
    return Status::SerializationError("implausible columnar record count");
  }
  uint64_t nf;
  JARVIS_RETURN_IF_ERROR(in->GetVarU64(&nf));
  if (nf > (1u << 20)) {
    return Status::SerializationError("implausible schema field count");
  }
  std::vector<ValueType> tags(nf);
  for (uint64_t j = 0; j < nf; ++j) {
    uint8_t tag;
    JARVIS_RETURN_IF_ERROR(in->GetU8(&tag));
    if (tag > static_cast<uint8_t>(ValueType::kString)) {
      return Status::SerializationError("bad schema type tag");
    }
    tags[j] = static_cast<ValueType>(tag);
  }

  // Flags RLE. resize() keeps already-present elements so a reused output
  // batch retains its field vectors' capacities.
  out->resize(n);
  std::vector<uint8_t> flags(n);
  uint64_t covered = 0;
  while (covered < n) {
    uint8_t f;
    JARVIS_RETURN_IF_ERROR(in->GetU8(&f));
    if (f != 0 && f != kColFlagPartial && f != kColFlagDense) {
      return Status::SerializationError("bad columnar row flags");
    }
    uint64_t run;
    JARVIS_RETURN_IF_ERROR(in->GetVarU64(&run));
    if (run == 0 || run > n - covered) {
      return Status::SerializationError("bad columnar flag run length");
    }
    std::fill(flags.begin() + covered, flags.begin() + covered + run, f);
    covered += run;
  }
  uint64_t ndense = 0;
  for (uint64_t r = 0; r < n; ++r) {
    Record& rec = (*out)[r];
    rec.kind = (flags[r] & kColFlagPartial) ? RecordKind::kPartial
                                            : RecordKind::kData;
    rec.fields.clear();
    if (flags[r] & kColFlagDense) {
      rec.fields.reserve(nf);
      ++ndense;
    }
  }

  // Time columns: kernel block decode into a stack buffer, then one
  // row-order assignment pass.
  const kernels::KernelTable& k = kernels::Active();
  int64_t vals[kEncBlock];
  {
    uint64_t prev = 0;
    for (uint64_t r = 0; r < n;) {
      const size_t m = std::min<uint64_t>(kEncBlock, n - r);
      const size_t used =
          k.delta_varint_decode(in->cursor(), in->remaining(), m, &prev, vals);
      if (used == 0) {
        return Status::SerializationError("bad time column varint");
      }
      in->Advance(used);
      for (size_t j = 0; j < m; ++j) {
        (*out)[r + j].event_time = vals[j];
      }
      r += m;
    }
    prev = 0;
    for (uint64_t r = 0; r < n;) {
      const size_t m = std::min<uint64_t>(kEncBlock, n - r);
      const size_t used =
          k.delta_varint_decode(in->cursor(), in->remaining(), m, &prev, vals);
      if (used == 0) {
        return Status::SerializationError("bad time column varint");
      }
      in->Advance(used);
      for (size_t j = 0; j < m; ++j) {
        (*out)[r + j].window_start = vals[j];
      }
      r += m;
    }
  }

  // Dense value columns; fields append in column order per record, which
  // reconstructs field order because every pass touches records in row order.
  for (uint64_t j = 0; j < nf; ++j) {
    switch (tags[j]) {
      case ValueType::kInt64: {
        // The column's ndense varints are contiguous on the wire; decode
        // them in blocks and fan out to the dense rows in row order.
        uint64_t prev = 0;
        uint64_t done = 0;
        uint64_t r = 0;
        while (done < ndense) {
          const size_t m = std::min<uint64_t>(kEncBlock, ndense - done);
          const size_t used = k.delta_varint_decode(in->cursor(),
                                                    in->remaining(), m, &prev,
                                                    vals);
          if (used == 0) {
            return Status::SerializationError("bad int64 column varint");
          }
          in->Advance(used);
          // Walks rows until the block's m values are placed; b is the
          // cursor into vals, r carries across blocks.
          for (size_t b = 0; b < m; ++r) {
            if (!(flags[r] & kColFlagDense)) continue;
            (*out)[r].fields.emplace_back(vals[b++]);
          }
          done += m;
        }
        break;
      }
      case ValueType::kDouble:
        for (uint64_t r = 0; r < n; ++r) {
          if (!(flags[r] & kColFlagDense)) continue;
          double v;
          JARVIS_RETURN_IF_ERROR(in->GetDouble(&v));
          (*out)[r].fields.emplace_back(v);
        }
        break;
      case ValueType::kString: {
        if (ndense == 0) break;
        uint8_t marker;
        JARVIS_RETURN_IF_ERROR(in->GetU8(&marker));
        if (marker == kStrDict) {
          uint64_t dict_size;
          JARVIS_RETURN_IF_ERROR(in->GetVarU64(&dict_size));
          if (dict_size == 0 || dict_size > 255) {
            return Status::SerializationError("bad string dictionary size");
          }
          std::vector<std::string> dict(dict_size);
          for (uint64_t k = 0; k < dict_size; ++k) {
            JARVIS_RETURN_IF_ERROR(in->GetString(&dict[k]));
          }
          for (uint64_t r = 0; r < n; ++r) {
            if (!(flags[r] & kColFlagDense)) continue;
            uint8_t code;
            JARVIS_RETURN_IF_ERROR(in->GetU8(&code));
            if (code >= dict_size) {
              return Status::SerializationError("bad string dictionary code");
            }
            (*out)[r].fields.emplace_back(dict[code]);
          }
        } else if (marker == kStrPlain) {
          for (uint64_t r = 0; r < n; ++r) {
            if (!(flags[r] & kColFlagDense)) continue;
            std::string v;
            JARVIS_RETURN_IF_ERROR(in->GetString(&v));
            (*out)[r].fields.emplace_back(std::move(v));
          }
        } else {
          return Status::SerializationError("bad string column marker");
        }
        break;
      }
    }
  }

  // Fallback rows (inline-tagged, like the record format).
  for (uint64_t r = 0; r < n; ++r) {
    if (flags[r] & kColFlagDense) continue;
    Record& rec = (*out)[r];
    uint64_t nfields;
    JARVIS_RETURN_IF_ERROR(in->GetVarU64(&nfields));
    if (nfields > (1u << 20)) {
      return Status::SerializationError("implausible field count");
    }
    rec.fields.reserve(nfields);
    for (uint64_t f = 0; f < nfields; ++f) {
      Value v;
      JARVIS_RETURN_IF_ERROR(ReadTaggedValue(in, &v));
      rec.fields.push_back(std::move(v));
    }
  }
  return Status::OK();
}

}  // namespace

Status DeserializeColumnarBatch(ser::BufferReader* in, ColumnarBatch* out) {
  // Decodes the version-independent body straight into column form. The
  // grammar walk mirrors DecodeColumnarBody exactly (same order, same
  // guards); only the destination differs: dense values land in the typed
  // column vectors / packed time arrays in bulk instead of fanning out to
  // one Record per row.
  const auto decode_body = [out](ser::BufferReader* in) -> Status {
    uint64_t n;
    JARVIS_RETURN_IF_ERROR(in->GetVarU64(&n));
    if (n > in->remaining()) {
      return Status::SerializationError("implausible columnar record count");
    }
    uint64_t nf;
    JARVIS_RETURN_IF_ERROR(in->GetVarU64(&nf));
    if (nf > (1u << 20)) {
      return Status::SerializationError("implausible schema field count");
    }
    // The wire is name-free, so the reconstructed schema carries empty field
    // names; consumers of the decoded batch are positional (pipeline entry
    // pushes, MoveToRows), which is exactly what the drain path needs.
    std::vector<Schema::Field> decoded_fields(nf);
    for (uint64_t j = 0; j < nf; ++j) {
      uint8_t tag;
      JARVIS_RETURN_IF_ERROR(in->GetU8(&tag));
      if (tag > static_cast<uint8_t>(ValueType::kString)) {
        return Status::SerializationError("bad schema type tag");
      }
      decoded_fields[j].type = static_cast<ValueType>(tag);
    }
    out->Reset(Schema(std::move(decoded_fields)));

    // Flags RLE -> density bitmap + pre-created fallback records (kind set
    // now; times and fields filled by the later passes in row order).
    std::vector<uint8_t> flags(n);
    uint64_t covered = 0;
    while (covered < n) {
      uint8_t f;
      JARVIS_RETURN_IF_ERROR(in->GetU8(&f));
      if (f != 0 && f != kColFlagPartial && f != kColFlagDense) {
        return Status::SerializationError("bad columnar row flags");
      }
      uint64_t run;
      JARVIS_RETURN_IF_ERROR(in->GetVarU64(&run));
      if (run == 0 || run > n - covered) {
        return Status::SerializationError("bad columnar flag run length");
      }
      std::fill(flags.begin() + covered, flags.begin() + covered + run, f);
      covered += run;
    }
    uint64_t ndense = 0;
    out->is_dense_.resize(n);
    for (uint64_t r = 0; r < n; ++r) {
      const bool dense = (flags[r] & kColFlagDense) != 0;
      out->is_dense_[r] = dense ? 1 : 0;
      if (dense) {
        ++ndense;
      } else {
        Record rec;
        rec.kind = (flags[r] & kColFlagPartial) ? RecordKind::kPartial
                                                : RecordKind::kData;
        out->fallback_.push_back(std::move(rec));
      }
    }

    // Time columns: kernel block decode, dense values appended to the packed
    // arrays, fallback values scattered onto their records in row order.
    const kernels::KernelTable& k = kernels::Active();
    int64_t vals[kEncBlock];
    const auto decode_times = [&](std::vector<Micros>* dense_times,
                                  auto set_fb) -> Status {
      dense_times->reserve(ndense);
      uint64_t prev = 0;
      size_t fb = 0;
      for (uint64_t r = 0; r < n;) {
        const size_t m = std::min<uint64_t>(kEncBlock, n - r);
        const size_t used = k.delta_varint_decode(in->cursor(),
                                                  in->remaining(), m, &prev,
                                                  vals);
        if (used == 0) {
          return Status::SerializationError("bad time column varint");
        }
        in->Advance(used);
        for (size_t j = 0; j < m; ++j) {
          if (flags[r + j] & kColFlagDense) {
            dense_times->push_back(vals[j]);
          } else {
            set_fb(out->fallback_[fb++], vals[j]);
          }
        }
        r += m;
      }
      return Status::OK();
    };
    JARVIS_RETURN_IF_ERROR(decode_times(
        &out->event_time_,
        [](Record& rec, Micros t) { rec.event_time = t; }));
    JARVIS_RETURN_IF_ERROR(decode_times(
        &out->window_start_,
        [](Record& rec, Micros t) { rec.window_start = t; }));

    // Dense value columns decode contiguously into the column vectors — the
    // bulk fast path this decoder exists for.
    for (uint64_t j = 0; j < nf; ++j) {
      Column& col = out->columns_[j];
      switch (col.type) {
        case ValueType::kInt64: {
          col.i64.resize(ndense);
          uint64_t prev = 0;
          uint64_t done = 0;
          while (done < ndense) {
            const size_t m = std::min<uint64_t>(kEncBlock, ndense - done);
            const size_t used =
                k.delta_varint_decode(in->cursor(), in->remaining(), m, &prev,
                                      col.i64.data() + done);
            if (used == 0) {
              return Status::SerializationError("bad int64 column varint");
            }
            in->Advance(used);
            done += m;
          }
          break;
        }
        case ValueType::kDouble:
          col.f64.resize(ndense);
          for (uint64_t i = 0; i < ndense; ++i) {
            JARVIS_RETURN_IF_ERROR(in->GetDouble(&col.f64[i]));
          }
          break;
        case ValueType::kString: {
          if (ndense == 0) break;
          uint8_t marker;
          JARVIS_RETURN_IF_ERROR(in->GetU8(&marker));
          col.str.reserve(ndense);
          if (marker == kStrDict) {
            uint64_t dict_size;
            JARVIS_RETURN_IF_ERROR(in->GetVarU64(&dict_size));
            if (dict_size == 0 || dict_size > 255) {
              return Status::SerializationError("bad string dictionary size");
            }
            std::vector<std::string> dict(dict_size);
            for (uint64_t e = 0; e < dict_size; ++e) {
              JARVIS_RETURN_IF_ERROR(in->GetString(&dict[e]));
            }
            for (uint64_t i = 0; i < ndense; ++i) {
              uint8_t code;
              JARVIS_RETURN_IF_ERROR(in->GetU8(&code));
              if (code >= dict_size) {
                return Status::SerializationError("bad string dictionary code");
              }
              col.str.push_back(dict[code]);
            }
          } else if (marker == kStrPlain) {
            for (uint64_t i = 0; i < ndense; ++i) {
              std::string v;
              JARVIS_RETURN_IF_ERROR(in->GetString(&v));
              col.str.push_back(std::move(v));
            }
          } else {
            return Status::SerializationError("bad string column marker");
          }
          break;
        }
      }
    }

    // Fallback rows (inline-tagged), in row order.
    {
      size_t fb = 0;
      for (uint64_t r = 0; r < n; ++r) {
        if (flags[r] & kColFlagDense) continue;
        Record& rec = out->fallback_[fb++];
        uint64_t nfields;
        JARVIS_RETURN_IF_ERROR(in->GetVarU64(&nfields));
        if (nfields > (1u << 20)) {
          return Status::SerializationError("implausible field count");
        }
        rec.fields.reserve(nfields);
        for (uint64_t f = 0; f < nfields; ++f) {
          Value v;
          JARVIS_RETURN_IF_ERROR(ReadTaggedValue(in, &v));
          rec.fields.push_back(std::move(v));
        }
      }
    }
    return Status::OK();
  };

  uint8_t version;
  JARVIS_RETURN_IF_ERROR(in->GetU8(&version));
  if (version == kColumnarFormatVersionLegacy) {
    return decode_body(in);
  }
  if (version != kColumnarFormatVersion) {
    return Status::SerializationError("bad columnar format version");
  }
  uint32_t body_len, crc;
  JARVIS_RETURN_IF_ERROR(in->GetU32(&body_len));
  JARVIS_RETURN_IF_ERROR(in->GetU32(&crc));
  if (body_len > in->remaining()) {
    return Status::SerializationError("truncated columnar frame");
  }
  if (ser::FrameChecksum(in->cursor(), body_len) != crc) {
    return Status::SerializationError("columnar frame checksum mismatch");
  }
  ser::BufferReader body(in->cursor(), body_len);
  JARVIS_RETURN_IF_ERROR(decode_body(&body));
  if (!body.AtEnd()) {
    return Status::SerializationError("columnar frame payload length mismatch");
  }
  in->Advance(body_len);
  return Status::OK();
}

}  // namespace jarvis::stream
