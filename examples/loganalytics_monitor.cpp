// Scenario 2 from the paper: live debugging of an analytics cluster via
// unstructured text logs (Helios-style). The Listing-3 query normalizes
// lines, filters by patterns, parses per-tenant job statistics, and builds
// 10-bucket histograms of job latency and CPU/memory utilization per tenant
// — with the parsing/bucketizing partially executed on the data source.
//
//   ./build/examples/loganalytics_monitor

#include <cstdio>
#include <map>

#include "core/runtime.h"
#include "core/source_executor.h"
#include "core/sp_executor.h"
#include "query/compile.h"
#include "workloads/loganalytics.h"
#include "workloads/queries.h"

using namespace jarvis;

int main() {
  auto plan = workloads::MakeLogAnalyticsQuery();
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto compiled = query::Compile(std::move(plan).value());
  if (!compiled.ok()) return 1;
  std::printf("LogAnalytics query: %zu operators (all source-placeable)\n",
              compiled->num_total_ops());

  // Text processing costs: the whole chain needs ~62% of a core at this
  // rate; the node only grants 40%, so Jarvis partially offloads.
  auto costs = std::make_shared<core::FixedCostModel>(std::vector<double>{
      0.02 / 3000, 0.16 / 3000, 0.14 / 3000, 0.12 / 2700, 0.04 / 2700,
      0.14 / 2700});
  core::SourceExecutorOptions opts;
  opts.cpu_budget_fraction = 0.40;
  core::SourceExecutor source(*compiled, costs, opts);
  core::SpExecutor sp(*compiled, 1);
  core::JarvisRuntime runtime(compiled->num_source_ops(),
                              core::RuntimeConfig{});

  workloads::LogAnalyticsConfig lcfg;
  lcfg.lines_per_sec = 3000;
  lcfg.num_tenants = 4;
  workloads::LogAnalyticsGenerator gen(lcfg);

  stream::RecordBatch results;
  bool profile = false;
  for (int epoch = 0; epoch < 35; ++epoch) {
    source.Ingest(gen.Generate(Seconds(epoch), Seconds(epoch + 1)));
    auto out = source.RunEpoch(Seconds(epoch + 1), profile);
    if (!out.ok()) return 1;
    const auto obs = out->observation;
    (void)sp.Consume(0, std::move(out).value(), &results);
    (void)sp.EndEpoch(&results);
    auto decision = runtime.OnEpochEnd(obs);
    source.SetLoadFactors(decision.load_factors);
    if (decision.flush_pending) source.RequestFlush();
    profile = decision.request_profile;
  }

  std::printf("converged load factors:");
  for (double lf : runtime.load_factors()) std::printf(" %.2f", lf);
  std::printf("\n\nper-tenant cpu-utilization histograms (last window):\n");

  // results: (tenant, stat_name, bucket, count) rows.
  Micros last_window = -1;
  for (const stream::Record& r : results) {
    last_window = std::max(last_window, r.window_start);
  }
  std::map<std::string, std::map<int, int64_t>> histograms;
  for (const stream::Record& r : results) {
    if (r.window_start != last_window || r.str(1) != "cpu") continue;
    histograms[r.str(0)][static_cast<int>(r.f64(2))] = r.i64(3);
  }
  for (const auto& [tenant, hist] : histograms) {
    std::printf("  %-6s |", tenant.c_str());
    for (int b = 0; b < 10; ++b) {
      auto it = hist.find(b);
      const int64_t count = it == hist.end() ? 0 : it->second;
      std::printf("%5ld", count);
    }
    std::printf("  (buckets 0-9 = cpu%% deciles)\n");
  }
  return 0;
}
