#ifndef JARVIS_CORE_BUILDING_BLOCK_H_
#define JARVIS_CORE_BUILDING_BLOCK_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/exec_pool.h"
#include "core/runtime.h"
#include "core/source_executor.h"
#include "core/sp_executor.h"
#include "query/compile.h"

namespace jarvis::core {

/// One *core building block* of the monitoring pipeline (Figure 4b): N data
/// sources, each with its own executor and fully decentralized Jarvis
/// runtime, feeding one parent stream processor. This is the deployment
/// object the query manager creates per query; examples and tests use it to
/// avoid hand-wiring the epoch loop.
///
/// Threading model: with `threads` == 1 every epoch runs the serial
/// reference loop. With `threads` > 1 the sources run on an ExecPool — each
/// source's generate + stage pipeline + drain is one task on its per-source
/// queue — and hand their epoch outputs to the stream processor through a
/// mutex-sharded channel. The SP consumes them on the caller's thread in
/// ascending source order (the stable merge order), and one idle barrier per
/// epoch keeps the adaptation round's boundary consistent. Because every
/// source is deterministic in isolation (own generator, own RNG, own
/// runtime) and the merge order is fixed, the multithreaded epoch is
/// bit-identical to the serial loop — results, stats, observations, and
/// wire bytes; the cross-thread equivalence fuzz suite asserts exactly this.
class BuildingBlock {
 public:
  struct SourceSpec {
    std::shared_ptr<const CostModel> cost_model;
    SourceExecutorOptions options;
    /// Produces this source's records for event-time interval [from, to).
    /// Runs on a pool worker when threads > 1, so it must not share mutable
    /// state with other sources' generators (give each source its own
    /// seeded generator — determinism depends on it).
    std::function<stream::RecordBatch(Micros, Micros)> generate;
  };

  /// `threads` < 0 (default) reads the JARVIS_THREADS environment variable
  /// (unset -> 1, the serial loop; 0 -> all hardware threads); >= 0 is
  /// explicit with the same convention.
  BuildingBlock(const query::CompiledQuery& query,
                std::vector<SourceSpec> sources,
                RuntimeConfig runtime_config = RuntimeConfig(),
                int threads = -1);

  ~BuildingBlock();

  Status Init() const { return init_status_; }

  /// Runs one epoch across all sources and the stream processor; closed
  /// windows' results are appended to `results`.
  Status RunEpoch(stream::RecordBatch* results);

  /// Checkpoints one source (Section IV-E fault tolerance): its accumulated
  /// operator state and pending records travel the drain path to the stream
  /// processor, which can then finalize current windows even if the source
  /// subsequently fails. Returns the number of records shipped.
  Result<size_t> CheckpointSource(size_t source_id,
                                  stream::RecordBatch* results);

  /// Simulates a data-source failure: the source stops contributing records
  /// and its watermark is released so the stream processor can keep making
  /// progress for the surviving sources.
  Status FailSource(size_t source_id);

  /// Adds a source mid-run (churn). It participates from the next epoch;
  /// until its first epoch output lands, the merged watermark holds — the
  /// same one-epoch stall any newly reporting input causes. Returns the new
  /// source id.
  Result<size_t> AddSource(SourceSpec spec);

  /// End-of-run flush of all remaining state.
  Status Finish(stream::RecordBatch* results);

  /// Test/diagnostic tap: called once per source per epoch with the epoch
  /// output, on the consuming thread, immediately before the SP consumes it
  /// (so calls are ordered by source id regardless of thread count). The
  /// cross-thread equivalence suite uses this to compare drains, stats, and
  /// observations across thread counts.
  using EpochTap =
      std::function<void(size_t source_id, const SourceEpochOutput& out)>;
  void SetEpochTap(EpochTap tap) { tap_ = std::move(tap); }

  size_t num_sources() const { return sources_.size(); }
  SourceExecutor& source(size_t i) { return *sources_[i]; }
  JarvisRuntime& runtime(size_t i) { return *runtimes_[i]; }
  SpExecutor& stream_processor() { return *sp_; }
  Micros now() const { return now_; }
  int threads() const { return threads_; }

 private:
  struct PerSource {
    std::function<stream::RecordBatch(Micros, Micros)> generate;
    bool profile_next = false;
    bool alive = true;
  };

  /// One source's epoch: generate, ingest, run the stage pipeline, hand the
  /// output to the SP channel, then apply the runtime's decision. Everything
  /// it touches is owned by source `s` except the hand-off.
  void RunSourceEpoch(size_t s, Micros from, Micros to);

  Status RunEpochSerial(stream::RecordBatch* results);
  Status RunEpochParallel(stream::RecordBatch* results);

  RuntimeConfig runtime_config_;
  query::CompiledQuery query_;  // kept for AddSource's executor construction
  std::vector<std::unique_ptr<SourceExecutor>> sources_;
  std::vector<std::unique_ptr<JarvisRuntime>> runtimes_;
  std::vector<PerSource> state_;
  std::unique_ptr<SpExecutor> sp_;
  Micros now_ = 0;
  Micros epoch_length_ = Seconds(1);
  Status init_status_;
  int threads_ = 1;
  EpochTap tap_;
  // The executor kernel, created on first parallel epoch and kept across
  // epochs; the sharded hand-off carries each source's epoch output (status
  // + drain chunks) to the consuming thread.
  std::unique_ptr<ExecPool> pool_;
  struct EpochEnvelope {
    Status status;
    SourceEpochOutput out;
  };
  std::unique_ptr<ShardedHandoff<EpochEnvelope>> handoff_;
};

}  // namespace jarvis::core

#endif  // JARVIS_CORE_BUILDING_BLOCK_H_
