#ifndef JARVIS_STREAM_KERNELS_H_
#define JARVIS_STREAM_KERNELS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "stream/predicate.h"

namespace jarvis::stream::kernels {

/// The columnar data plane's explicit SIMD kernel layer. Every hot loop the
/// plane runs per record — typed compare fills, selection combines, Retain
/// compaction, density-bitmap expansion, and the v2 drain codec's
/// delta+zigzag varint block steps — is reachable only through this table,
/// so one dispatch decision (made once at startup) switches the whole plane
/// between the reference scalar loops and the per-ISA vector kernels.
///
/// Contracts shared by every implementation (the kernels_test fuzz suite
/// enforces them bit for bit across ISAs):
///  - selection arrays are one byte per element holding exactly 0 or 1,
///  - every kernel is exact: outputs, byte streams, and carried state are
///    identical across ISAs for identical inputs (including NaN handling in
///    f64 compares, which follows the C++ operators),
///  - n == 0 is always valid, and pointers may then be null,
///  - no kernel reads or writes outside [ptr, ptr + n) of its operands, so
///    misaligned heads and ragged tails are fine.
struct KernelTable {
  /// sel[i] = (v[i] <op> c) ? 1 : 0 for all six comparison operators.
  void (*cmp_fill_i64)(const int64_t* v, size_t n, int64_t c, CmpOp op,
                       uint8_t* sel);
  void (*cmp_fill_f64)(const double* v, size_t n, double c, CmpOp op,
                       uint8_t* sel);

  /// Bytewise logical combines over 0/1 selection bytes (dst op= src), the
  /// complement, and the population count (number of nonzero bytes).
  void (*sel_and)(uint8_t* dst, const uint8_t* src, size_t n);
  void (*sel_or)(uint8_t* dst, const uint8_t* src, size_t n);
  void (*sel_not)(uint8_t* dst, const uint8_t* src, size_t n);
  uint64_t (*sel_count)(const uint8_t* sel, size_t n);

  /// Stable in-place compaction of n 8-byte elements (i64/f64/Micros —
  /// moved as raw bytes, so double bit patterns survive exactly): keeps
  /// element i iff keep[i] != 0, returns the kept count.
  size_t (*compact64)(void* data, const uint8_t* keep, size_t n);

  /// Stable in-place compaction of n bytes (density bitmap, flags).
  size_t (*compact8)(uint8_t* data, const uint8_t* keep, size_t n);

  /// Expands the per-lane keep masks through the density bitmap into one
  /// per-row mask: keep_rows[r] = density[r] ? keep_dense[d++]
  ///                                         : keep_fallback[f++].
  void (*density_expand)(const uint8_t* density, size_t n,
                         const uint8_t* keep_dense,
                         const uint8_t* keep_fallback, uint8_t* keep_rows);

  /// Delta + zigzag varint block encode (the v2 drain codec's int64/time
  /// column step): emits varint(zigzag(v[i] - prev)) for each value into
  /// `out` (which must hold at least 10 * n bytes) and returns the bytes
  /// written. *prev carries the running baseline across blocks.
  size_t (*delta_varint_encode)(const int64_t* v, size_t n, uint64_t* prev,
                                uint8_t* out);

  /// Inverse block step: decodes exactly n delta varints from
  /// [in, in + avail) into out and returns the bytes consumed, or 0 when
  /// the input is truncated or a varint overruns 64 bits (n must be > 0;
  /// *prev is unspecified after a failure).
  size_t (*delta_varint_decode)(const uint8_t* in, size_t avail, size_t n,
                                uint64_t* prev, int64_t* out);
};

/// Instruction sets a kernel table can be built for.
enum class Isa : uint8_t { kScalar = 0, kAvx2, kNeon };

std::string_view IsaName(Isa isa);

/// The reference scalar table (always available; the equivalence baseline).
const KernelTable& Scalar();

/// The table for a specific ISA, or nullptr when this build/CPU lacks it.
const KernelTable* TableFor(Isa isa);

/// The ISA auto-detection would pick on this machine (CPUID on x86-64,
/// baseline NEON on aarch64, scalar otherwise).
Isa BestIsa();

/// The dispatched table. Selected once on first use: auto-detection,
/// overridable with JARVIS_SIMD=scalar|avx2|neon (an unavailable or unknown
/// value falls back to auto-detection's pick, never to a crash).
const KernelTable& Active();
Isa ActiveIsa();

/// Test/bench hook: repoints Active() at the given ISA's table. Returns
/// false (leaving dispatch untouched) when the ISA is unavailable.
bool ForceIsa(Isa isa);

// -- Internal: per-ISA translation-unit entry points ------------------------
// Defined in stream/kernels_avx2.cc / stream/kernels_neon.cc, which CMake
// compiles only for the matching target architecture (with -mavx2 on x86).
// Each returns nullptr when its TU was built without the ISA enabled.
const KernelTable* GetAvx2Kernels();
const KernelTable* GetNeonKernels();

namespace detail {

/// Scalar comparison shared by the reference kernels and every vector
/// kernel's ragged tail, so tails are bit-identical by construction.
template <typename T>
inline bool CmpApply(T a, CmpOp op, T b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

/// 8-bit comparison mask -> eight 0/1 selection bytes packed in a u64
/// (little-endian), shared by the vector compare fills.
inline constexpr std::array<uint64_t, 256> kMaskExpand = [] {
  std::array<uint64_t, 256> a{};
  for (int m = 0; m < 256; ++m) {
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      if (m & (1 << b)) v |= uint64_t{1} << (8 * b);
    }
    a[static_cast<size_t>(m)] = v;
  }
  return a;
}();

/// One LEB128 varint read, shared by the scalar decoder and every vector
/// decoder's slow path, so the acceptance set (BufferReader::GetVarU64's:
/// at most ten bytes, error once the continuation bit would shift past bit
/// 63) has exactly one definition. Advances *pos past the varint on
/// success; returns false on truncated or overlong input.
inline bool DecodeVarU64Step(const uint8_t* in, size_t avail, size_t* pos,
                             uint64_t* raw) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (*pos >= avail || shift > 63) return false;
    const uint8_t b = in[(*pos)++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  *raw = v;
  return true;
}

/// Exact zero-byte detector for an 8-byte density group (nonzero = dense).
inline bool HasZeroByte(uint64_t v) {
  return ((v - 0x0101010101010101ULL) & ~v & 0x8080808080808080ULL) != 0;
}

/// Expands one 8-row group of a mixed density chunk: uniform groups are
/// block copies from the matching keep mask, mixed groups take the scalar
/// interleave. Shared by the AVX2 and NEON density_expand kernels so their
/// sub-chunk behavior cannot diverge; *d / *f are the running lane cursors.
inline void ExpandDensityGroup8(const uint8_t* density,
                                const uint8_t* keep_dense,
                                const uint8_t* keep_fallback,
                                uint8_t* keep_rows, size_t* d, size_t* f) {
  uint64_t group;
  std::memcpy(&group, density, 8);
  if (group == 0) {
    std::memcpy(keep_rows, keep_fallback + *f, 8);
    *f += 8;
    return;
  }
  if (!HasZeroByte(group)) {
    std::memcpy(keep_rows, keep_dense + *d, 8);
    *d += 8;
    return;
  }
  for (size_t j = 0; j < 8; ++j) {
    keep_rows[j] = density[j] ? keep_dense[(*d)++] : keep_fallback[(*f)++];
  }
}

}  // namespace detail
}  // namespace jarvis::stream::kernels

#endif  // JARVIS_STREAM_KERNELS_H_
