#include "stream/group_aggregate.h"

#include <algorithm>
#include <limits>

#include "ser/buffer.h"

namespace jarvis::stream {

std::string_view AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

void GroupAggregateOp::Acc::AddValue(double v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  count += 1;
  sum += v;
}

void GroupAggregateOp::Acc::Merge(const Acc& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

Value GroupAggregateOp::Acc::Finalize(AggKind kind) const {
  switch (kind) {
    case AggKind::kCount:
      return Value(count);
    case AggKind::kSum:
      return Value(sum);
    case AggKind::kAvg:
      return Value(count == 0 ? 0.0 : sum / static_cast<double>(count));
    case AggKind::kMin:
      return Value(min);
    case AggKind::kMax:
      return Value(max);
  }
  return Value(int64_t{0});
}

Schema GroupAggregateOp::MakeOutputSchema(const Schema& input,
                                          const std::vector<size_t>& keys,
                                          const std::vector<AggSpec>& aggs) {
  std::vector<Schema::Field> fields;
  fields.reserve(keys.size() + aggs.size());
  for (size_t k : keys) fields.push_back(input.field(k));
  for (const AggSpec& a : aggs) {
    ValueType t =
        a.kind == AggKind::kCount ? ValueType::kInt64 : ValueType::kDouble;
    fields.push_back({a.out_name, t});
  }
  return Schema(std::move(fields));
}

GroupAggregateOp::GroupAggregateOp(std::string name,
                                   const Schema& input_schema,
                                   std::vector<size_t> key_fields,
                                   std::vector<AggSpec> aggs,
                                   Micros window_width, bool emit_partials)
    : Operator(std::move(name),
               MakeOutputSchema(input_schema, key_fields, aggs)),
      key_fields_(std::move(key_fields)),
      aggs_(std::move(aggs)),
      window_width_(window_width),
      emit_partials_(emit_partials) {}

std::string GroupAggregateOp::EncodeKey(
    const std::vector<Value>& keys) const {
  ser::BufferWriter w;
  for (const Value& v : keys) {
    w.PutU8(static_cast<uint8_t>(TypeOf(v)));
    switch (TypeOf(v)) {
      case ValueType::kInt64:
        w.PutU64(static_cast<uint64_t>(std::get<int64_t>(v)));
        break;
      case ValueType::kDouble:
        w.PutDouble(std::get<double>(v));
        break;
      case ValueType::kString:
        w.PutString(std::get<std::string>(v));
        break;
    }
  }
  return std::string(reinterpret_cast<const char*>(w.data().data()),
                     w.size());
}

Status GroupAggregateOp::UpdateFromData(const Record& rec) {
  if (rec.window_start < 0) {
    return Status::FailedPrecondition(
        "GroupAggregate requires windowed input (no window_start)");
  }
  std::vector<Value> keys;
  keys.reserve(key_fields_.size());
  for (size_t k : key_fields_) {
    if (k >= rec.fields.size()) {
      return Status::OutOfRange("group key index out of range");
    }
    keys.push_back(rec.fields[k]);
  }
  GroupMap& groups = windows_[rec.window_start];
  Group& g = groups[EncodeKey(keys)];
  if (g.accs.empty()) {
    g.keys = std::move(keys);
    g.accs.resize(aggs_.size());
  }
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    if (a.kind == AggKind::kCount) {
      g.accs[i].AddValue(0.0);
    } else {
      if (a.field >= rec.fields.size()) {
        return Status::OutOfRange("aggregate field index out of range");
      }
      g.accs[i].AddValue(rec.AsDouble(a.field));
    }
  }
  return Status::OK();
}

Status GroupAggregateOp::MergeFromPartial(const Record& rec) {
  // Partial layout: keys..., then per agg: count(i64), sum(f64), min(f64),
  // max(f64).
  const size_t nk = key_fields_.size();
  const size_t expected = nk + 4 * aggs_.size();
  if (rec.fields.size() != expected) {
    return Status::SerializationError("partial record arity mismatch");
  }
  std::vector<Value> keys(rec.fields.begin(), rec.fields.begin() + nk);
  GroupMap& groups = windows_[rec.window_start];
  Group& g = groups[EncodeKey(keys)];
  if (g.accs.empty()) {
    g.keys = std::move(keys);
    g.accs.resize(aggs_.size());
  }
  for (size_t i = 0; i < aggs_.size(); ++i) {
    Acc other;
    other.count = std::get<int64_t>(rec.fields[nk + 4 * i]);
    other.sum = std::get<double>(rec.fields[nk + 4 * i + 1]);
    other.min = std::get<double>(rec.fields[nk + 4 * i + 2]);
    other.max = std::get<double>(rec.fields[nk + 4 * i + 3]);
    g.accs[i].Merge(other);
  }
  return Status::OK();
}

Status GroupAggregateOp::DoProcess(Record&& rec, RecordBatch* out) {
  (void)out;  // G+R emits on window close, not per record.
  if (rec.kind == RecordKind::kPartial) return MergeFromPartial(rec);
  return UpdateFromData(rec);
}

void GroupAggregateOp::EmitWindow(Micros window_start, GroupMap& groups,
                                  RecordBatch* out) {
  for (auto& [key, group] : groups) {
    Record r;
    r.event_time = window_start + window_width_;
    r.window_start = window_start;
    if (emit_partials_) {
      r.kind = RecordKind::kPartial;
      r.fields = group.keys;
      for (const Acc& acc : group.accs) {
        r.fields.emplace_back(acc.count);
        r.fields.emplace_back(acc.sum);
        r.fields.emplace_back(acc.min);
        r.fields.emplace_back(acc.max);
      }
    } else {
      r.kind = RecordKind::kData;
      r.fields = group.keys;
      for (size_t i = 0; i < aggs_.size(); ++i) {
        r.fields.push_back(group.accs[i].Finalize(aggs_[i].kind));
      }
    }
    out->push_back(std::move(r));
  }
}

Status GroupAggregateOp::OnWatermark(Micros wm, RecordBatch* out) {
  const size_t first = out->size();
  auto it = windows_.begin();
  while (it != windows_.end() && it->first + window_width_ <= wm) {
    EmitWindow(it->first, it->second, out);
    it = windows_.erase(it);
  }
  CountOutputs(*out, first);
  return Status::OK();
}

Status GroupAggregateOp::ExportPartialState(RecordBatch* out) {
  const size_t first = out->size();
  const bool saved = emit_partials_;
  emit_partials_ = true;
  for (auto& [start, groups] : windows_) {
    EmitWindow(start, groups, out);
  }
  emit_partials_ = saved;
  windows_.clear();
  CountOutputs(*out, first);
  return Status::OK();
}

}  // namespace jarvis::stream
