#include <gtest/gtest.h>

#include "core/building_block.h"
#include "workloads/pingmesh.h"
#include "workloads/queries.h"

namespace jarvis::core {
namespace {

query::CompiledQuery CompileS2S() {
  auto plan = workloads::MakeS2SProbeQuery();
  EXPECT_TRUE(plan.ok());
  auto compiled = query::Compile(std::move(plan).value());
  EXPECT_TRUE(compiled.ok());
  return std::move(compiled).value();
}

BuildingBlock::SourceSpec MakeSpec(uint64_t seed, double budget,
                                   int pairs = 100) {
  BuildingBlock::SourceSpec spec;
  spec.cost_model = std::make_shared<FixedCostModel>(
      std::vector<double>{1e-6, 2e-6, 1e-5});
  spec.options.cpu_budget_fraction = budget;
  workloads::PingmeshConfig cfg;
  cfg.seed = seed;
  cfg.source_ip = static_cast<int64_t>(seed) * 100000;
  cfg.num_pairs = pairs;
  cfg.probe_interval = Seconds(1);
  auto gen = std::make_shared<workloads::PingmeshGenerator>(cfg);
  spec.generate = [gen](Micros from, Micros to) {
    return gen->Generate(from, to);
  };
  return spec;
}

TEST(BuildingBlockTest, SingleSourceEndToEnd) {
  query::CompiledQuery q = CompileS2S();
  std::vector<BuildingBlock::SourceSpec> specs;
  specs.push_back(MakeSpec(1, 1.0));
  BuildingBlock block(q, std::move(specs));
  ASSERT_TRUE(block.Init().ok());
  stream::RecordBatch results;
  for (int e = 0; e < 25; ++e) {
    ASSERT_TRUE(block.RunEpoch(&results).ok());
  }
  EXPECT_FALSE(results.empty());
  // The runtime adapted at least once and converged.
  EXPECT_GT(block.runtime(0).adaptations_completed(), 0);
}

TEST(BuildingBlockTest, MultipleSourcesMergeAtTheStreamProcessor) {
  query::CompiledQuery q = CompileS2S();
  std::vector<BuildingBlock::SourceSpec> specs;
  for (uint64_t s = 1; s <= 3; ++s) specs.push_back(MakeSpec(s, 1.0, 50));
  BuildingBlock block(q, std::move(specs));
  ASSERT_TRUE(block.Init().ok());
  stream::RecordBatch results;
  for (int e = 0; e < 15; ++e) {
    ASSERT_TRUE(block.RunEpoch(&results).ok());
  }
  ASSERT_TRUE(block.Finish(&results).ok());
  // 3 sources x 50 distinct (src,dst) pairs must all appear.
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const stream::Record& r : results) {
    pairs.insert({r.i64(0), r.i64(1)});
  }
  EXPECT_EQ(pairs.size(), 150u);
}

TEST(BuildingBlockTest, CheckpointShipsStateToStreamProcessor) {
  query::CompiledQuery q = CompileS2S();
  std::vector<BuildingBlock::SourceSpec> specs;
  specs.push_back(MakeSpec(7, 1.0));
  BuildingBlock block(q, std::move(specs));
  ASSERT_TRUE(block.Init().ok());
  // Force everything local so the source holds aggregation state.
  stream::RecordBatch results;
  for (int e = 0; e < 4; ++e) {
    block.source(0).SetLoadFactors({1, 1, 1});
    ASSERT_TRUE(block.RunEpoch(&results).ok());
  }
  auto shipped = block.CheckpointSource(0, &results);
  ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();
  EXPECT_GT(*shipped, 0u);
}

TEST(BuildingBlockTest, SourceFailureAfterCheckpointLosesNothing) {
  // The Section IV-E fault-tolerance story: state checkpointed via the
  // drain path lets the stream processor finalize the current window after
  // the source dies.
  query::CompiledQuery q = CompileS2S();

  auto run = [&](bool fail_after_checkpoint) {
    std::vector<BuildingBlock::SourceSpec> specs;
    specs.push_back(MakeSpec(9, 1.0));
    BuildingBlock block(q, std::move(specs));
    stream::RecordBatch results;
    for (int e = 0; e < 4; ++e) {
      block.source(0).SetLoadFactors({1, 1, 1});
      EXPECT_TRUE(block.RunEpoch(&results).ok());
    }
    EXPECT_TRUE(block.CheckpointSource(0, &results).ok());
    if (fail_after_checkpoint) {
      EXPECT_TRUE(block.FailSource(0).ok());
    }
    EXPECT_TRUE(block.Finish(&results).ok());
    return results;
  };

  stream::RecordBatch with_failure = run(true);
  stream::RecordBatch without_failure = run(false);
  // The 4 epochs of probes before the checkpoint are fully represented in
  // both runs: same groups, same counts for the first window.
  ASSERT_FALSE(with_failure.empty());
  std::multiset<std::string> a, b;
  for (const auto& r : with_failure) {
    if (r.window_start == 0) {
      a.insert(stream::ValueToString(r.fields[0]) + "/" +
               stream::ValueToString(r.fields[1]));
    }
  }
  for (const auto& r : without_failure) {
    if (r.window_start == 0) {
      b.insert(stream::ValueToString(r.fields[0]) + "/" +
               stream::ValueToString(r.fields[1]));
    }
  }
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(BuildingBlockTest, FailedSourceDoesNotBlockSurvivors) {
  query::CompiledQuery q = CompileS2S();
  std::vector<BuildingBlock::SourceSpec> specs;
  specs.push_back(MakeSpec(11, 1.0, 30));
  specs.push_back(MakeSpec(12, 1.0, 30));
  BuildingBlock block(q, std::move(specs));
  stream::RecordBatch results;
  for (int e = 0; e < 3; ++e) ASSERT_TRUE(block.RunEpoch(&results).ok());
  ASSERT_TRUE(block.FailSource(0).ok());
  // The surviving source's windows keep closing (the dead source's
  // watermark was released).
  const size_t before = results.size();
  for (int e = 3; e < 15; ++e) ASSERT_TRUE(block.RunEpoch(&results).ok());
  EXPECT_GT(results.size(), before);
}

TEST(BuildingBlockTest, InvalidSourceIdsRejected) {
  query::CompiledQuery q = CompileS2S();
  std::vector<BuildingBlock::SourceSpec> specs;
  specs.push_back(MakeSpec(1, 1.0));
  BuildingBlock block(q, std::move(specs));
  stream::RecordBatch results;
  EXPECT_FALSE(block.CheckpointSource(5, &results).ok());
  EXPECT_FALSE(block.FailSource(5).ok());
}

}  // namespace
}  // namespace jarvis::core
