#include "stream/group_aggregate.h"

#include <algorithm>
#include <limits>

#include "ser/buffer.h"

namespace jarvis::stream {

std::string_view AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

void GroupAggregateOp::Acc::AddValue(double v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  count += 1;
  sum += v;
}

void GroupAggregateOp::Acc::Merge(const Acc& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

Value GroupAggregateOp::Acc::Finalize(AggKind kind) const {
  switch (kind) {
    case AggKind::kCount:
      return Value(count);
    case AggKind::kSum:
      return Value(sum);
    case AggKind::kAvg:
      return Value(count == 0 ? 0.0 : sum / static_cast<double>(count));
    case AggKind::kMin:
      return Value(min);
    case AggKind::kMax:
      return Value(max);
  }
  return Value(int64_t{0});
}

Schema GroupAggregateOp::MakeOutputSchema(const Schema& input,
                                          const std::vector<size_t>& keys,
                                          const std::vector<AggSpec>& aggs) {
  std::vector<Schema::Field> fields;
  fields.reserve(keys.size() + aggs.size());
  for (size_t k : keys) fields.push_back(input.field(k));
  for (const AggSpec& a : aggs) {
    ValueType t =
        a.kind == AggKind::kCount ? ValueType::kInt64 : ValueType::kDouble;
    fields.push_back({a.out_name, t});
  }
  return Schema(std::move(fields));
}

GroupAggregateOp::GroupAggregateOp(std::string name,
                                   const Schema& input_schema,
                                   std::vector<size_t> key_fields,
                                   std::vector<AggSpec> aggs,
                                   Micros window_width, bool emit_partials)
    : Operator(std::move(name),
               MakeOutputSchema(input_schema, key_fields, aggs)),
      key_fields_(std::move(key_fields)),
      aggs_(std::move(aggs)),
      window_width_(window_width),
      emit_partials_(emit_partials) {}

void GroupAggregateOp::AppendKeyValue(const Value& v) {
  key_buf_.PutU8(static_cast<uint8_t>(TypeOf(v)));
  switch (TypeOf(v)) {
    case ValueType::kInt64:
      key_buf_.PutU64(static_cast<uint64_t>(std::get<int64_t>(v)));
      break;
    case ValueType::kDouble:
      key_buf_.PutDouble(std::get<double>(v));
      break;
    case ValueType::kString:
      key_buf_.PutString(std::get<std::string>(v));
      break;
  }
}

std::string_view GroupAggregateOp::EncodedKey() const {
  return std::string_view(
      reinterpret_cast<const char*>(key_buf_.data().data()), key_buf_.size());
}

template <typename MakeKeys>
GroupAggregateOp::Group& GroupAggregateOp::FindOrCreateGroup(
    GroupMap& groups, MakeKeys&& make_keys) {
  const std::string_view key = EncodedKey();
  auto it = groups.find(key);
  if (it == groups.end()) {
    it = groups.emplace(std::string(key), Group{}).first;
    Group& g = it->second;
    g.keys = make_keys();
    g.accs.resize(aggs_.size());
  }
  return it->second;
}

Status GroupAggregateOp::UpdateFromData(const Record& rec,
                                        WindowCursor* cursor) {
  if (rec.window_start < 0) {
    return Status::FailedPrecondition(
        "GroupAggregate requires windowed input (no window_start)");
  }
  key_buf_.Clear();
  for (size_t k : key_fields_) {
    if (k >= rec.fields.size()) {
      return Status::OutOfRange("group key index out of range");
    }
    AppendKeyValue(rec.fields[k]);
  }
  if (cursor->groups == nullptr || cursor->window_start != rec.window_start) {
    // std::map nodes are stable, so the cached pointer survives inserts of
    // other windows within the same batch.
    cursor->groups = &windows_[rec.window_start];
    cursor->window_start = rec.window_start;
  }
  Group& g = FindOrCreateGroup(*cursor->groups, [&] {
    std::vector<Value> keys;
    keys.reserve(key_fields_.size());
    for (size_t k : key_fields_) keys.push_back(rec.fields[k]);
    return keys;
  });
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    if (a.kind == AggKind::kCount) {
      g.accs[i].AddValue(0.0);
    } else {
      if (a.field >= rec.fields.size()) {
        return Status::OutOfRange("aggregate field index out of range");
      }
      g.accs[i].AddValue(rec.AsDouble(a.field));
    }
  }
  return Status::OK();
}

Status GroupAggregateOp::MergeFromPartial(const Record& rec,
                                          WindowCursor* cursor) {
  // Partial layout: keys..., then per agg: count(i64), sum(f64), min(f64),
  // max(f64).
  const size_t nk = key_fields_.size();
  const size_t expected = nk + 4 * aggs_.size();
  if (rec.fields.size() != expected) {
    return Status::SerializationError("partial record arity mismatch");
  }
  key_buf_.Clear();
  for (size_t k = 0; k < nk; ++k) AppendKeyValue(rec.fields[k]);
  if (cursor->groups == nullptr || cursor->window_start != rec.window_start) {
    cursor->groups = &windows_[rec.window_start];
    cursor->window_start = rec.window_start;
  }
  Group& g = FindOrCreateGroup(*cursor->groups, [&] {
    return std::vector<Value>(rec.fields.begin(), rec.fields.begin() + nk);
  });
  for (size_t i = 0; i < aggs_.size(); ++i) {
    Acc other;
    other.count = std::get<int64_t>(rec.fields[nk + 4 * i]);
    other.sum = std::get<double>(rec.fields[nk + 4 * i + 1]);
    other.min = std::get<double>(rec.fields[nk + 4 * i + 2]);
    other.max = std::get<double>(rec.fields[nk + 4 * i + 3]);
    g.accs[i].Merge(other);
  }
  return Status::OK();
}

Status GroupAggregateOp::DoProcess(Record&& rec, RecordBatch* out) {
  (void)out;  // G+R emits on window close, not per record.
  WindowCursor cursor;
  if (rec.kind == RecordKind::kPartial) return MergeFromPartial(rec, &cursor);
  return UpdateFromData(rec, &cursor);
}

Status GroupAggregateOp::DoProcessBatch(RecordBatch&& batch,
                                        RecordBatch* out) {
  (void)out;  // G+R emits on window close, not per record.
  WindowCursor cursor;
  for (const Record& rec : batch) {
    if (rec.kind == RecordKind::kPartial) {
      JARVIS_RETURN_IF_ERROR(MergeFromPartial(rec, &cursor));
    } else {
      JARVIS_RETURN_IF_ERROR(UpdateFromData(rec, &cursor));
    }
  }
  return Status::OK();
}

Status GroupAggregateOp::DoProcessBatchInPlace(RecordBatch* batch) {
  // G+R consumes the whole batch into accumulator state; nothing flows on.
  RecordBatch sink;
  JARVIS_RETURN_IF_ERROR(DoProcessBatch(std::move(*batch), &sink));
  batch->clear();
  return Status::OK();
}

void GroupAggregateOp::EmitWindow(Micros window_start, GroupMap& groups,
                                  RecordBatch* out) {
  GrowForAppend(out, groups.size());
  const size_t arity =
      key_fields_.size() + aggs_.size() * (emit_partials_ ? 4 : 1);
  for (auto& [key, group] : groups) {
    Record r;
    r.event_time = window_start + window_width_;
    r.window_start = window_start;
    // Every caller drops the window right after emission, so the key column
    // moves out instead of copying.
    r.fields = std::move(group.keys);
    r.fields.reserve(arity);
    if (emit_partials_) {
      r.kind = RecordKind::kPartial;
      for (const Acc& acc : group.accs) {
        r.fields.emplace_back(acc.count);
        r.fields.emplace_back(acc.sum);
        r.fields.emplace_back(acc.min);
        r.fields.emplace_back(acc.max);
      }
    } else {
      r.kind = RecordKind::kData;
      for (size_t i = 0; i < aggs_.size(); ++i) {
        r.fields.push_back(group.accs[i].Finalize(aggs_[i].kind));
      }
    }
    out->push_back(std::move(r));
  }
}

Status GroupAggregateOp::OnWatermark(Micros wm, RecordBatch* out) {
  const size_t first = out->size();
  auto it = windows_.begin();
  while (it != windows_.end() && it->first + window_width_ <= wm) {
    EmitWindow(it->first, it->second, out);
    it = windows_.erase(it);
  }
  CountOutputs(*out, first);
  return Status::OK();
}

Status GroupAggregateOp::ExportPartialState(RecordBatch* out) {
  const size_t first = out->size();
  const bool saved = emit_partials_;
  emit_partials_ = true;
  for (auto& [start, groups] : windows_) {
    EmitWindow(start, groups, out);
  }
  emit_partials_ = saved;
  windows_.clear();
  CountOutputs(*out, first);
  return Status::OK();
}

}  // namespace jarvis::stream
