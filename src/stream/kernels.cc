#include "stream/kernels.h"

#include <cstdlib>
#include <cstring>

#include "common/env.h"
#include "ser/codec.h"

namespace jarvis::stream::kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------
// These define the semantics every vector kernel must reproduce bit for bit.
// They are compiled with the build's baseline flags only (no -mavx2 etc.),
// so JARVIS_SIMD=scalar measures exactly what the compiler finds on its own
// — the honest baseline the explicit kernels are judged against.

/// One comparison per element with the functor resolved per column; the
/// numeric instantiations auto-vectorize at the baseline ISA.
template <typename T, typename Cmp>
void FillCmpScalar(const T* v, size_t n, T c, uint8_t* sel, Cmp cmp) {
  for (size_t i = 0; i < n; ++i) {
    sel[i] = static_cast<uint8_t>(cmp(v[i], c));
  }
}

template <typename T>
void CmpFillScalar(const T* v, size_t n, T c, CmpOp op, uint8_t* sel) {
  switch (op) {
    case CmpOp::kEq:
      FillCmpScalar(v, n, c, sel, [](T a, T b) { return a == b; });
      break;
    case CmpOp::kNe:
      FillCmpScalar(v, n, c, sel, [](T a, T b) { return a != b; });
      break;
    case CmpOp::kLt:
      FillCmpScalar(v, n, c, sel, [](T a, T b) { return a < b; });
      break;
    case CmpOp::kLe:
      FillCmpScalar(v, n, c, sel, [](T a, T b) { return a <= b; });
      break;
    case CmpOp::kGt:
      FillCmpScalar(v, n, c, sel, [](T a, T b) { return a > b; });
      break;
    case CmpOp::kGe:
      FillCmpScalar(v, n, c, sel, [](T a, T b) { return a >= b; });
      break;
  }
}

void CmpFillI64Scalar(const int64_t* v, size_t n, int64_t c, CmpOp op,
                      uint8_t* sel) {
  CmpFillScalar(v, n, c, op, sel);
}

void CmpFillF64Scalar(const double* v, size_t n, double c, CmpOp op,
                      uint8_t* sel) {
  CmpFillScalar(v, n, c, op, sel);
}

void SelAndScalar(uint8_t* dst, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void SelOrScalar(uint8_t* dst, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void SelNotScalar(uint8_t* dst, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<uint8_t>(src[i] == 0);
  }
}

uint64_t SelCountScalar(const uint8_t* sel, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += sel[i] != 0;
  return count;
}

size_t Compact64Scalar(void* data, const uint8_t* keep, size_t n) {
  uint8_t* base = static_cast<uint8_t*>(data);
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    if (w != i) std::memcpy(base + w * 8, base + i * 8, 8);
    ++w;
  }
  return w;
}

size_t Compact8Scalar(uint8_t* data, const uint8_t* keep, size_t n) {
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    data[w++] = data[i];
  }
  return w;
}

void DensityExpandScalar(const uint8_t* density, size_t n,
                         const uint8_t* keep_dense,
                         const uint8_t* keep_fallback, uint8_t* keep_rows) {
  size_t d = 0, f = 0;
  for (size_t r = 0; r < n; ++r) {
    keep_rows[r] = density[r] ? keep_dense[d++] : keep_fallback[f++];
  }
}

size_t DeltaVarintEncodeScalar(const int64_t* v, size_t n, uint64_t* prev,
                               uint8_t* out) {
  ser::DeltaEncoder enc{*prev};
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    w += ser::EncodeVarU64(enc.ZigZagDelta(v[i]), out + w);
  }
  *prev = enc.prev;
  return w;
}

size_t DeltaVarintDecodeScalar(const uint8_t* in, size_t avail, size_t n,
                               uint64_t* prev, int64_t* out) {
  ser::DeltaDecoder dec{*prev};
  size_t p = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t raw;
    if (!detail::DecodeVarU64Step(in, avail, &p, &raw)) return 0;
    out[i] = dec.Next(ser::ZigZagDecode(raw));
  }
  *prev = dec.prev;
  return p;
}

constexpr KernelTable kScalarTable = {
    CmpFillI64Scalar,   CmpFillF64Scalar,        SelAndScalar,
    SelOrScalar,        SelNotScalar,            SelCountScalar,
    Compact64Scalar,    Compact8Scalar,          DensityExpandScalar,
    DeltaVarintEncodeScalar, DeltaVarintDecodeScalar,
};

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

struct Dispatch {
  const KernelTable* table;
  Isa isa;
};

Dispatch InitDispatch() {
  // Index 0 ("auto", also the unset default) keeps the auto-detected pick;
  // an unknown value aborts at startup instead of silently ignoring the
  // override.
  switch (jarvis::env::EnumOrDie("JARVIS_SIMD", 0,
                                 {"auto", "scalar", "avx2", "neon"})) {
    case 1: return {&kScalarTable, Isa::kScalar};
    case 2:
      if (const KernelTable* t = TableFor(Isa::kAvx2)) return {t, Isa::kAvx2};
      break;
    case 3:
      if (const KernelTable* t = TableFor(Isa::kNeon)) return {t, Isa::kNeon};
      break;
    default: break;
  }
  const Isa want = BestIsa();
  if (const KernelTable* t = TableFor(want)) return {t, want};
  return {&kScalarTable, Isa::kScalar};
}

Dispatch& ActiveDispatch() {
  static Dispatch d = InitDispatch();
  return d;
}

}  // namespace

std::string_view IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "?";
}

const KernelTable& Scalar() { return kScalarTable; }

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &kScalarTable;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      if (__builtin_cpu_supports("avx2")) return GetAvx2Kernels();
#endif
      return nullptr;
    case Isa::kNeon:
#if defined(__aarch64__)
      return GetNeonKernels();
#endif
      return nullptr;
  }
  return nullptr;
}

Isa BestIsa() {
  if (TableFor(Isa::kAvx2) != nullptr) return Isa::kAvx2;
  if (TableFor(Isa::kNeon) != nullptr) return Isa::kNeon;
  return Isa::kScalar;
}

const KernelTable& Active() { return *ActiveDispatch().table; }

Isa ActiveIsa() { return ActiveDispatch().isa; }

bool ForceIsa(Isa isa) {
  const KernelTable* t = TableFor(isa);
  if (t == nullptr) return false;
  ActiveDispatch() = {t, isa};
  return true;
}

#if !defined(__x86_64__) && !defined(_M_X64)
// The AVX2 TU is only compiled into x86-64 builds; satisfy the declaration
// elsewhere so TableFor never needs a link-time probe.
const KernelTable* GetAvx2Kernels() { return nullptr; }
#endif
#if !defined(__aarch64__)
const KernelTable* GetNeonKernels() { return nullptr; }
#endif

}  // namespace jarvis::stream::kernels
