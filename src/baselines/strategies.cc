#include "baselines/strategies.h"

#include <algorithm>

#include "stream/operator.h"

namespace jarvis::baselines {

std::unique_ptr<core::PartitioningStrategy> MakeAllSp(size_t num_ops) {
  return std::make_unique<StaticStrategy>("All-SP",
                                          std::vector<double>(num_ops, 0.0));
}

std::unique_ptr<core::PartitioningStrategy> MakeAllSrc(size_t num_ops) {
  return std::make_unique<StaticStrategy>("All-Src",
                                          std::vector<double>(num_ops, 1.0));
}

std::unique_ptr<core::PartitioningStrategy> MakeFilterSrc(
    const sim::QueryModel& model) {
  std::vector<double> lfs(model.num_ops(), 0.0);
  for (size_t i = 0; i < model.num_ops(); ++i) {
    lfs[i] = 1.0;
    // Heuristic boundary: everything through the first operator that
    // meaningfully reduces data (the filter); name-based tagging keeps the
    // model purely analytic.
    if (model.ops[i].name.find("filter") != std::string::npos ||
        model.ops[i].name.find("Filter") != std::string::npos) {
      break;
    }
  }
  return std::make_unique<StaticStrategy>("Filter-Src", std::move(lfs));
}

size_t BestOpStrategy::BoundaryFor(double cpu_budget_seconds,
                                   double epoch_seconds) const {
  const std::vector<double> relay = model_.CumulativeRelayRecords();
  const double records = model_.input_records_per_sec * epoch_seconds;
  double cost = 0.0;
  size_t boundary = 0;
  for (size_t i = 0; i < model_.num_ops(); ++i) {
    cost += relay[i] * model_.ops[i].cost_per_record * records;
    if (cost > cpu_budget_seconds) break;
    boundary = i + 1;
  }
  return boundary;
}

core::JarvisRuntime::Decision BestOpStrategy::OnEpochEnd(
    const core::EpochObservation& obs) {
  const size_t boundary =
      BoundaryFor(obs.cpu_budget_seconds, obs.epoch_seconds);
  core::JarvisRuntime::Decision d;
  d.load_factors.assign(model_.num_ops(), 0.0);
  for (size_t i = 0; i < boundary; ++i) d.load_factors[i] = 1.0;
  return d;
}

core::JarvisRuntime::Decision LbDpStrategy::OnEpochEnd(
    const core::EpochObservation& obs) {
  const double full_cost_per_sec = model_.FullCpuFraction();
  const double budget_per_sec =
      obs.epoch_seconds <= 0 ? 0.0
                             : obs.cpu_budget_seconds / obs.epoch_seconds;
  const double share =
      full_cost_per_sec <= 0
          ? 1.0
          : std::clamp(budget_per_sec / full_cost_per_sec, 0.0, 1.0);
  core::JarvisRuntime::Decision d;
  d.load_factors.assign(model_.num_ops(), 1.0);
  if (!d.load_factors.empty()) d.load_factors[0] = share;
  return d;
}

std::unique_ptr<core::PartitioningStrategy> MakeJarvis(
    size_t num_ops, core::RuntimeConfig config) {
  return std::make_unique<JarvisStrategy>(num_ops, config);
}

std::unique_ptr<core::PartitioningStrategy> MakeLpOnly(size_t num_ops) {
  core::RuntimeConfig config;
  config.use_fine_tune = false;
  return std::make_unique<JarvisStrategy>(num_ops, config);
}

std::unique_ptr<core::PartitioningStrategy> MakeNoLpInit(size_t num_ops) {
  core::RuntimeConfig config;
  config.use_lp_init = false;
  return std::make_unique<JarvisStrategy>(num_ops, config);
}

}  // namespace jarvis::baselines
