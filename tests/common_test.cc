#include <gtest/gtest.h>

#include <iterator>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace jarvis {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, EveryCodeRoundTrips) {
  const StatusCode kAllCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kOutOfRange,
      StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
      StatusCode::kUnimplemented, StatusCode::kInternal,
      StatusCode::kSerializationError, StatusCode::kInfeasible,
  };
  for (StatusCode code : kAllCodes) {
    Status s(code, "msg");
    EXPECT_EQ(s.code(), code);
    EXPECT_EQ(s.ok(), code == StatusCode::kOk);
    // Rebuilding from the accessors yields an equal status.
    EXPECT_EQ(Status(s.code(), s.message()), s);
    if (code == StatusCode::kOk) {
      EXPECT_EQ(s.ToString(), "OK");
    } else {
      // ToString round-trips the code name and message.
      EXPECT_EQ(s.ToString(),
                std::string(StatusCodeToString(code)) + ": msg");
    }
    // Every code has a distinct, non-"Unknown" name.
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
  std::set<std::string_view> names;
  for (StatusCode code : kAllCodes) names.insert(StatusCodeToString(code));
  EXPECT_EQ(names.size(), std::size(kAllCodes));
}

TEST(StatusTest, AllFactoriesSetTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::SerializationError("x").code(),
            StatusCode::kSerializationError);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnMacro(int x) {
  JARVIS_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnMacro(1).ok());
  EXPECT_EQ(UseReturnMacro(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> MaybeDouble(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UseAssignMacro(int x) {
  JARVIS_ASSIGN_OR_RETURN(int doubled, MaybeDouble(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = UseAssignMacro(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_FALSE(UseAssignMacro(-1).ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(13);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo = lo || v == -3;
    hi = hi || v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, BernoulliEdgeCasesAndRate) {
  Rng rng(23);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SplitMixIsPureFunction) {
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
  EXPECT_NE(SplitMix64(42), SplitMix64(43));
}

TEST(UnitsTest, TimeConversions) {
  EXPECT_EQ(Seconds(1), 1000000);
  EXPECT_EQ(Seconds(2.5), 2500000);
  EXPECT_EQ(Millis(3), 3000);
}

TEST(UnitsTest, MbpsRoundTrip) {
  const double bytes_per_sec = MbpsToBytesPerSec(26.2);
  EXPECT_NEAR(BytesToMbps(bytes_per_sec, 1.0), 26.2, 1e-9);
}

TEST(UnitsTest, BytesToMbpsHandlesZeroDuration) {
  EXPECT_EQ(BytesToMbps(1000, 0.0), 0.0);
}

TEST(UnitsTest, PaperConstants) {
  // 200K servers * 20K peers / 5s * 86B ~ 512.6 Gbps total translates to
  // 2.62 Mbps per server; 10x scaling gives 26.2.
  EXPECT_NEAR(constants::kPingmeshRateMbps10x, 26.2, 1e-9);
  // The paper's 2.048 Mbps/query/source uses the 1024-based 10 Gbps
  // (= 10240 Mbps): 10240 / 250 / 20 * 10 = 20.48 after 10x scaling.
  EXPECT_NEAR(constants::kPerQueryBandwidthMbps10x, 10240.0 / 250 / 20 * 10,
              1e-6);
}

}  // namespace
}  // namespace jarvis
