#ifndef JARVIS_THIRD_PARTY_LZ4_LZ4_BLOCK_H_
#define JARVIS_THIRD_PARTY_LZ4_LZ4_BLOCK_H_

#include <cstddef>
#include <cstdint>

// Minimal single-file LZ4 block codec (the raw block format, no frame
// container), vendored so the wire compression layer has zero external
// dependencies. Clean-room implementation of the published block format:
//   sequence := token | literal-length ext | literals
//              | u16le offset | match-length ext
// with the standard end-of-block rules (the last sequence is literals-only,
// the last 5 bytes are literals, no match starts within the last 12 bytes).
// The compressor is a greedy single-probe hash matcher; the decompressor is
// fully bounds-checked and rejects any malformed stream with `false` instead
// of reading or writing out of bounds. Both sides are deterministic: the
// same input bytes always produce the same output bytes, which the drain
// wire relies on for bit-identical retransmits and replay.

namespace jarvis::lz4 {

/// Worst-case compressed size for `n` input bytes (incompressible input
/// expands by 1 byte per 255 plus a small constant).
constexpr size_t CompressBound(size_t n) { return n + n / 255 + 16; }

/// Compresses src[0, n) into dst[0, cap). Returns the compressed size, or 0
/// when the output would not fit in `cap` (never happens when cap >=
/// CompressBound(n)).
size_t Compress(const uint8_t* src, size_t n, uint8_t* dst, size_t cap);

/// Decompresses src[0, n) into dst[0, dst_len). Returns true iff the stream
/// is well-formed and produces exactly dst_len bytes; malformed input
/// (truncation, bad offsets, wrong output size) returns false without any
/// out-of-bounds access.
bool Decompress(const uint8_t* src, size_t n, uint8_t* dst, size_t dst_len);

}  // namespace jarvis::lz4

#endif  // JARVIS_THIRD_PARTY_LZ4_LZ4_BLOCK_H_
