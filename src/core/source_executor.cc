#include "core/source_executor.h"

#include <algorithm>

namespace jarvis::core {

SourceExecutor::SourceExecutor(const query::CompiledQuery& query,
                               std::shared_ptr<const CostModel> cost_model,
                               SourceExecutorOptions options)
    : cost_model_(std::move(cost_model)),
      options_(options),
      total_ops_(query.num_total_ops()) {
  auto pipeline = query.MakeSourcePipeline();
  if (!pipeline.ok()) {
    init_status_ = pipeline.status();
    return;
  }
  pipeline_ = std::move(pipeline).value();
  proxies_.reserve(pipeline_->size());
  for (size_t i = 0; i < pipeline_->size(); ++i) {
    proxies_.emplace_back(i);
  }
  // Columnar plane: every stage queue holds its operator's *input* rows in
  // column form — stage 0 the query's input schema, stage i the output
  // schema of operator i-1. Divergent rows ride each batch's fallback lane,
  // so a schema mismatch in the data never disables the plane.
  columnar_mode_ = options_.enable_columnar && pipeline_->size() > 0 &&
                   pipeline_->FullyColumnar();
  if (columnar_mode_) {
    col_queues_.reserve(pipeline_->size());
    col_queues_.emplace_back(query.plan().plan.input_schema);
    for (size_t i = 1; i < pipeline_->size(); ++i) {
      col_queues_.emplace_back(pipeline_->op(i - 1).output_schema());
    }
  }
}

void SourceExecutor::Ingest(stream::RecordBatch batch) {
  for (stream::Record& r : batch) {
    input_buffer_.push_back(std::move(r));
  }
}

void SourceExecutor::SetLoadFactors(const std::vector<double>& lfs) {
  for (size_t i = 0; i < proxies_.size() && i < lfs.size(); ++i) {
    proxies_[i].set_load_factor(lfs[i]);
  }
}

void SourceExecutor::Drain(size_t entry_op, stream::Record&& rec,
                           SourceEpochOutput* out) {
  out->drained_bytes += stream::WireSize(rec);
  out->to_sp.push_back(DrainRecord{entry_op, std::move(rec)});
}

void SourceExecutor::DrainBatch(size_t entry_op, stream::RecordBatch&& batch,
                                SourceEpochOutput* out) {
  stream::GrowForAppend(&out->to_sp, batch.size());
  uint64_t bytes = 0;
  for (stream::Record& rec : batch) {
    bytes += stream::WireSize(rec);
    out->to_sp.push_back(DrainRecord{entry_op, std::move(rec)});
  }
  out->drained_bytes += bytes;
}

void SourceExecutor::RouteRowsIntoColumnarStage(size_t stage,
                                                stream::RecordBatch&& batch,
                                                SourceEpochOutput* out) {
  // Same decision sequence as RouteBatch, but forwarded rows enter the
  // stage's columnar queue instead of a row queue.
  route_decisions_.clear();
  proxies_[stage].RouteDecisions(batch.size(), &route_decisions_);
  drained_scratch_.clear();
  for (size_t k = 0; k < batch.size(); ++k) {
    if (route_decisions_[k]) {
      col_queues_[stage].AppendRow(std::move(batch[k]));
    } else {
      drained_scratch_.push_back(std::move(batch[k]));
    }
  }
  DrainBatch(stage, std::move(drained_scratch_), out);
}

void SourceExecutor::RouteOutputs(size_t emitter, stream::RecordBatch&& batch,
                                  SourceEpochOutput* out) {
  if (batch.empty()) return;
  const size_t next = emitter + 1;
  if (next < proxies_.size()) {
    if (columnar_mode_) {
      RouteRowsIntoColumnarStage(next, std::move(batch), out);
      return;
    }
    drained_scratch_.clear();
    proxies_[next].RouteBatch(std::move(batch), &drained_scratch_);
    DrainBatch(next, std::move(drained_scratch_), out);
    return;
  }
  // Output of the last source operator. Partial-state records re-enter the
  // stream processor *at* the replicated emitting operator (state merge);
  // data records continue at the next operator.
  for (stream::Record& rec : batch) {
    const size_t entry = rec.kind == stream::RecordKind::kPartial
                             ? emitter
                             : std::min(next, total_ops_);
    Drain(entry, std::move(rec), out);
  }
}

void SourceExecutor::RouteColumnarOutputs(size_t emitter,
                                          stream::ColumnarBatch* batch,
                                          SourceEpochOutput* out) {
  if (batch->empty()) return;
  const size_t next = emitter + 1;
  if (next < proxies_.size()) {
    // The batch's schema equals the next stage queue's schema (both are
    // operator `emitter`'s output schema), so Partition appends forwarded
    // rows column-to-column; drained rows materialize here — the wire.
    route_decisions_.clear();
    proxies_[next].RouteDecisions(batch->num_rows(), &route_decisions_);
    drained_scratch_.clear();
    batch->Partition(route_decisions_.data(), &col_queues_[next],
                     &drained_scratch_);
    DrainBatch(next, std::move(drained_scratch_), out);
    return;
  }
  // Output of the last source operator: same entry tagging as the row path.
  drained_scratch_.clear();
  batch->MoveToRows(&drained_scratch_);
  for (stream::Record& rec : drained_scratch_) {
    const size_t entry = rec.kind == stream::RecordKind::kPartial
                             ? emitter
                             : std::min(next, total_ops_);
    Drain(entry, std::move(rec), out);
  }
}

Status SourceExecutor::ProcessStageColumnar(size_t i, double* budget_left,
                                            double* spent,
                                            SourceEpochOutput* out) {
  const double cost = cost_model_->CostPerRecord(i);
  ControlProxy& proxy = proxies_[i];
  stream::ColumnarBatch& queue = col_queues_[i];
  // Identical per-record budget arithmetic to the row plane, so borderline
  // epochs process identical record counts.
  size_t n = 0;
  while (n < queue.num_rows() && *budget_left >= cost) {
    *budget_left -= cost;
    *spent += cost;
    ++n;
  }
  if (n == 0) return Status::OK();
  queue.SplitFront(n, &col_run_);
  JARVIS_RETURN_IF_ERROR(pipeline_->op(i).ProcessColumnar(&col_run_));
  proxy.CountProcessed(n);
  RouteColumnarOutputs(i, &col_run_, out);
  return Status::OK();
}

Status SourceExecutor::ProcessStage(size_t i, double* budget_left,
                                    double* spent, SourceEpochOutput* out) {
  if (columnar_mode_) return ProcessStageColumnar(i, budget_left, spent, out);
  const double cost = cost_model_->CostPerRecord(i);
  ControlProxy& proxy = proxies_[i];
  auto& queue = proxy.queue();
  // Count the affordable run with the same per-record budget arithmetic the
  // record-at-a-time loop used, so borderline epochs process identical
  // record counts; then run the whole chunk through the operator as one
  // batch. Outputs of stage i only ever feed stage i+1, so one pass drains
  // everything affordable.
  size_t n = 0;
  while (n < queue.size() && *budget_left >= cost) {
    *budget_left -= cost;
    *spent += cost;
    ++n;
  }
  if (n == 0) return Status::OK();
  // The affordable run is popped and processed as one batch. On an operator
  // error the in-flight chunk (and its partial outputs) is dropped — but the
  // whole epoch fails and its output is discarded in that case, exactly as
  // with the old per-record loop, so nothing observable changes.
  stage_input_.clear();
  stage_input_.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    stage_input_.push_back(std::move(queue.front()));
    queue.pop_front();
  }
  stream::Operator& op = pipeline_->op(i);
  if (op.HasInPlaceBatch()) {
    JARVIS_RETURN_IF_ERROR(op.ProcessBatchInPlace(&stage_input_));
    proxy.CountProcessed(n);
    RouteOutputs(i, std::move(stage_input_), out);
    return Status::OK();
  }
  stage_emitted_.clear();
  JARVIS_RETURN_IF_ERROR(
      pipeline_->op(i).ProcessBatch(std::move(stage_input_), &stage_emitted_));
  proxy.CountProcessed(n);
  RouteOutputs(i, std::move(stage_emitted_), out);
  return Status::OK();
}

void SourceExecutor::DrainPendingStage(size_t i, SourceEpochOutput* out) {
  if (columnar_mode_ && !col_queues_[i].empty()) {
    drained_scratch_.clear();
    col_queues_[i].MoveToRows(&drained_scratch_);
    DrainBatch(i, std::move(drained_scratch_), out);
  }
  ControlProxy& p = proxies_[i];
  while (!p.queue().empty()) {
    stream::Record rec = std::move(p.queue().front());
    p.queue().pop_front();
    Drain(i, std::move(rec), out);
  }
}

Result<SourceEpochOutput> SourceExecutor::Checkpoint(Micros watermark) {
  JARVIS_RETURN_IF_ERROR(init_status_);
  SourceEpochOutput out;
  out.watermark = watermark;
  // Pending (unprocessed) records resume at their own operator.
  for (size_t i = 0; i < proxies_.size(); ++i) {
    DrainPendingStage(i, &out);
  }
  // Accumulated operator state merges into the replicated operator.
  for (size_t i = 0; i < proxies_.size(); ++i) {
    stream::RecordBatch state;
    JARVIS_RETURN_IF_ERROR(pipeline_->op(i).ExportPartialState(&state));
    DrainBatch(i, std::move(state), &out);
  }
  return out;
}

Result<SourceEpochOutput> SourceExecutor::RunEpoch(Micros watermark,
                                                   bool profile_mode) {
  JARVIS_RETURN_IF_ERROR(init_status_);
  SourceEpochOutput out;
  out.watermark = watermark;

  for (ControlProxy& p : proxies_) p.BeginEpoch();
  pipeline_->ResetStats();
  // Relay-byte ratios are only consumed by profiling epochs; steady-state
  // epochs skip the per-record WireSize stats walks (drain-byte accounting
  // below stays exact regardless).
  pipeline_->SetByteAccounting(profile_mode);

  if (flush_pending_) {
    // Reconfiguration: ship backlog accumulated under the old plan to the
    // stream processor (resumed at each record's tagged operator).
    for (size_t i = 0; i < proxies_.size(); ++i) {
      DrainPendingStage(i, &out);
    }
    flush_pending_ = false;
  }

  const uint64_t input_records = input_buffer_.size();

  // Route the epoch's input through the first proxy as one batch.
  if (!input_buffer_.empty()) {
    stage_input_.clear();
    stage_input_.reserve(input_buffer_.size());
    while (!input_buffer_.empty()) {
      stage_input_.push_back(std::move(input_buffer_.front()));
      input_buffer_.pop_front();
    }
    if (proxies_.empty()) {
      DrainBatch(0, std::move(stage_input_), &out);
    } else if (columnar_mode_) {
      // Ingest boundary of the columnar plane: forwarded rows convert to
      // column form once, here, and stay columnar until the drain wire.
      RouteRowsIntoColumnarStage(0, std::move(stage_input_), &out);
      stage_input_.clear();
    } else {
      drained_scratch_.clear();
      proxies_[0].RouteBatch(std::move(stage_input_), &drained_scratch_);
      DrainBatch(0, std::move(drained_scratch_), &out);
    }
  }

  const double budget =
      options_.cpu_budget_fraction * options_.epoch_seconds;
  double spent = 0.0;

  if (profile_mode && !proxies_.empty()) {
    // Profile phase: execute one operator at a time on an equal slice of
    // the budget; relay ratios are measured, costs are estimated with
    // coverage-dependent error.
    const double slice = budget / static_cast<double>(proxies_.size());
    for (size_t i = 0; i < proxies_.size(); ++i) {
      double slice_left = slice;
      JARVIS_RETURN_IF_ERROR(ProcessStage(i, &slice_left, &spent, &out));
    }
  } else {
    double budget_left = budget;
    for (size_t i = 0; i < proxies_.size(); ++i) {
      JARVIS_RETURN_IF_ERROR(ProcessStage(i, &budget_left, &spent, &out));
    }
  }

  // Advance event time: window closures cascade through downstream
  // operators. Emission volume is a handful of aggregate rows per window, so
  // their processing cost is not accounted against the budget.
  for (size_t i = 0; i < proxies_.size(); ++i) {
    stage_emitted_.clear();
    JARVIS_RETURN_IF_ERROR(
        pipeline_->op(i).OnWatermark(watermark, &stage_emitted_));
    RouteOutputs(i, std::move(stage_emitted_), &out);
  }

  // Control-plane observation.
  EpochObservation& obs = out.observation;
  obs.proxies.reserve(proxies_.size());
  for (const ControlProxy& p : proxies_) {
    obs.proxies.push_back(p.Observe());
  }
  if (columnar_mode_) {
    // Pending backpressure lives in the columnar stage queues, not the
    // proxies' row queues; fold it into the observation so the control
    // plane sees identical queue depths on either plane.
    for (size_t i = 0; i < proxies_.size(); ++i) {
      obs.proxies[i].pending += col_queues_[i].num_rows();
    }
  }
  obs.cpu_budget_seconds = budget;
  obs.cpu_spent_seconds = spent;
  obs.input_records = input_records;
  obs.epoch_seconds = options_.epoch_seconds;

  if (profile_mode) {
    obs.profiles_valid = true;
    obs.profiles.resize(proxies_.size());
    for (size_t i = 0; i < proxies_.size(); ++i) {
      const stream::OperatorStats& st = pipeline_->op(i).stats();
      OperatorProfile& prof = obs.profiles[i];
      prof.relay_records = st.RelayRatioRecords();
      prof.relay_bytes = st.RelayRatioBytes();
      prof.sampled = st.records_in;
      const uint64_t available = st.records_in + obs.proxies[i].pending;
      const double coverage =
          available == 0 ? 1.0
                         : static_cast<double>(st.records_in) /
                               static_cast<double>(available);
      // Under-sampled operators are underestimated (optimistic), which is
      // the failure mode that makes a pure model-based plan over-subscribe.
      prof.cost_per_record = cost_model_->CostPerRecord(i) *
                             (1.0 - options_.profile_error_magnitude *
                                        (1.0 - coverage));
    }
  }
  return out;
}

}  // namespace jarvis::core
