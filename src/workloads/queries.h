#ifndef JARVIS_WORKLOADS_QUERIES_H_
#define JARVIS_WORKLOADS_QUERIES_H_

#include <memory>

#include "common/status.h"
#include "query/logical_plan.h"
#include "stream/join.h"

namespace jarvis::workloads {

/// Listing 1: server-to-server latency probing, 10 s tumbling windows,
/// healthy probes only, avg/max/min rtt per (srcIp, dstIp).
Result<query::LogicalPlan> MakeS2SProbeQuery();

/// The IP -> ToR switch mapping table used by Listing 2. Server IPs
/// [first_ip, first_ip + num_servers) map `servers_per_tor` consecutive IPs
/// to one ToR id, exposed under `value_name` after the join.
std::shared_ptr<stream::StaticTable> MakeIpToTorTable(
    int64_t first_ip, int64_t num_servers, int64_t servers_per_tor,
    const std::string& value_name = "torId");

/// Listing 2: ToR-to-ToR latency probing — two stream-table joins mapping
/// src/dst IPs to ToR ids, projection to (srcToR, dstToR, rtt), then G+R.
Result<query::LogicalPlan> MakeT2TProbeQuery(
    std::shared_ptr<stream::StaticTable> ip_to_tor_src,
    std::shared_ptr<stream::StaticTable> ip_to_tor_dst);

/// Listing 3: text analytics — trim/lowercase, pattern filter, parse into
/// (tenant, stat_name, stat) records, bucketize into a 10-bucket histogram,
/// count per (tenant, stat_name, bucket).
Result<query::LogicalPlan> MakeLogAnalyticsQuery();

}  // namespace jarvis::workloads

#endif  // JARVIS_WORKLOADS_QUERIES_H_
