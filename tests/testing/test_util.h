#ifndef JARVIS_TESTS_TESTING_TEST_UTIL_H_
#define JARVIS_TESTS_TESTING_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "stream/record.h"

namespace jarvis::testing {

// ---------------------------------------------------------------------------
// Environment pinning
// ---------------------------------------------------------------------------

/// Sets (or, with nullptr, clears) an environment variable for one scope,
/// restoring the previous value on destruction. Tests run serially within a
/// binary, so there are no env races. Use to pin a JARVIS_* knob a test's
/// semantics depend on — CI layers chaos env (JARVIS_TRAFFIC, JARVIS_FAULTS,
/// JARVIS_OVERLOAD, ...) over whole suites, and any test asserting behavior
/// specific to one configuration must not inherit it from the environment.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_.c_str(), saved_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> saved_;
};

// ---------------------------------------------------------------------------
// Record / batch builders
// ---------------------------------------------------------------------------

/// Converts a C++ literal to a stream::Value with the field types the engine
/// actually uses: integral -> int64, floating -> double, text -> string.
inline stream::Value V(int64_t v) { return stream::Value(v); }
inline stream::Value V(int v) { return stream::Value(static_cast<int64_t>(v)); }
inline stream::Value V(double v) { return stream::Value(v); }
inline stream::Value V(const char* v) { return stream::Value(std::string(v)); }
inline stream::Value V(std::string v) { return stream::Value(std::move(v)); }

/// Builds a data record at `event_time` from literal field values:
///   MakeRecord(Seconds(1), 7, 2.5, "host-a")
template <typename... Args>
stream::Record MakeRecord(Micros event_time, Args&&... fields) {
  stream::Record r;
  r.event_time = event_time;
  r.fields = {V(std::forward<Args>(fields))...};
  return r;
}

/// Builds a record already assigned to a tumbling window.
template <typename... Args>
stream::Record MakeWindowedRecord(Micros event_time, Micros window_start,
                                  Args&&... fields) {
  stream::Record r = MakeRecord(event_time, std::forward<Args>(fields)...);
  r.window_start = window_start;
  return r;
}

/// The two-column {int64 key, double value} schema most operator tests use.
inline stream::Schema KvSchema(const char* key_name = "k",
                               const char* val_name = "v") {
  return stream::Schema::Of({{key_name, stream::ValueType::kInt64},
                             {val_name, stream::ValueType::kDouble}});
}

/// Builds a batch by calling `make(i)` for i in [0, n).
inline stream::RecordBatch MakeBatch(
    size_t n, const std::function<stream::Record(size_t)>& make) {
  stream::RecordBatch batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) batch.push_back(make(i));
  return batch;
}

// ---------------------------------------------------------------------------
// Float-tolerant batch comparison
// ---------------------------------------------------------------------------

/// Compares two values: exact for int64/string, within `tol` for doubles.
inline ::testing::AssertionResult ValueNear(const stream::Value& a,
                                            const stream::Value& b,
                                            double tol) {
  if (stream::TypeOf(a) != stream::TypeOf(b)) {
    return ::testing::AssertionFailure()
           << "type mismatch: " << stream::ValueToString(a) << " vs "
           << stream::ValueToString(b);
  }
  if (std::holds_alternative<double>(a)) {
    const double da = std::get<double>(a), db = std::get<double>(b);
    if (std::isnan(da) && std::isnan(db)) return ::testing::AssertionSuccess();
    if (std::fabs(da - db) > tol) {
      return ::testing::AssertionFailure()
             << da << " vs " << db << " differ by more than " << tol;
    }
    return ::testing::AssertionSuccess();
  }
  if (!(a == b)) {
    return ::testing::AssertionFailure() << stream::ValueToString(a) << " vs "
                                         << stream::ValueToString(b);
  }
  return ::testing::AssertionSuccess();
}

/// Structural batch equality with numeric tolerance on double fields.
/// Compares kind, window, event time, arity, and every field, and reports
/// the first mismatching position on failure.
inline ::testing::AssertionResult BatchNear(const stream::RecordBatch& got,
                                            const stream::RecordBatch& want,
                                            double tol = 1e-9) {
  if (got.size() != want.size()) {
    return ::testing::AssertionFailure()
           << "batch size " << got.size() << " vs " << want.size();
  }
  for (size_t i = 0; i < got.size(); ++i) {
    const stream::Record& g = got[i];
    const stream::Record& w = want[i];
    if (g.kind != w.kind || g.event_time != w.event_time ||
        g.window_start != w.window_start) {
      return ::testing::AssertionFailure()
             << "record " << i << " header mismatch: kind/time/window ("
             << static_cast<int>(g.kind) << "," << g.event_time << ","
             << g.window_start << ") vs (" << static_cast<int>(w.kind) << ","
             << w.event_time << "," << w.window_start << ")";
    }
    if (g.fields.size() != w.fields.size()) {
      return ::testing::AssertionFailure()
             << "record " << i << " arity " << g.fields.size() << " vs "
             << w.fields.size();
    }
    for (size_t f = 0; f < g.fields.size(); ++f) {
      auto res = ValueNear(g.fields[f], w.fields[f], tol);
      if (!res) {
        return ::testing::AssertionFailure()
               << "record " << i << " field " << f << ": " << res.message();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Seeded randomness
// ---------------------------------------------------------------------------

/// Reads a positive integer from the environment, or `def` when unset/bad.
inline uint64_t EnvOrDefault(const char* name, uint64_t def) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return def;
  if (*s == '-' || *s == '+') return def;  // strtoull wraps negatives
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE || v == 0) return def;
  return static_cast<uint64_t>(v);
}

/// Base seed for randomized tests. Fixed by default so CI is deterministic;
/// override with JARVIS_TEST_SEED=<n> to explore other sequences locally.
inline uint64_t TestSeed() { return EnvOrDefault("JARVIS_TEST_SEED", 42); }

/// Fixture providing a deterministic per-test RNG. The seed mixes the base
/// seed with the test's full name, so reordering or sharding suites never
/// changes any individual test's sequence, and the seed is logged so any
/// failure is reproducible with JARVIS_TEST_SEED.
class SeededTest : public ::testing::Test {
 protected:
  SeededTest() : seed_(MixWithTestName(TestSeed())), rng_(seed_) {}

  void SetUp() override {
    RecordProperty("jarvis_seed", std::to_string(seed_));
  }

  uint64_t seed() const { return seed_; }
  Rng& rng() { return rng_; }

 private:
  static uint64_t MixWithTestName(uint64_t base) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    if (info == nullptr) return base;
    uint64_t h = base;
    const std::string name =
        std::string(info->test_suite_name()) + "." + info->name();
    for (const char c : name) {
      h = SplitMix64(h ^ static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
    return h;
  }

  uint64_t seed_;
  Rng rng_;
};

/// Seeds for randomized/fuzz suites: a window of N consecutive seeds, where
/// N comes from JARVIS_FUZZ_ITERS (default 6, keeping CI fast; crank it up
/// locally for deeper runs, e.g. JARVIS_FUZZ_ITERS=64 ctest -L fuzz). The
/// window starts at TestSeed() - 41, so the default base of 42 yields the
/// historical {1, 2, ..., N} corpus while an overridden JARVIS_TEST_SEED
/// (CI rotates it from the run id) slides the whole window to a fresh
/// neighborhood — every run explores new plans, and a failure's seed is in
/// the log for an exact replay.
inline std::vector<uint64_t> FuzzSeeds() {
  // Capped so an absurd override can't abort at static-init time.
  const uint64_t n =
      std::min<uint64_t>(EnvOrDefault("JARVIS_FUZZ_ITERS", 6), 1 << 20);
  const uint64_t base = TestSeed() - 42;  // wrapping is fine: any u64 seeds
  std::vector<uint64_t> seeds(n);
  for (uint64_t i = 0; i < n; ++i) seeds[i] = base + i + 1;
  return seeds;
}

}  // namespace jarvis::testing

#endif  // JARVIS_TESTS_TESTING_TEST_UTIL_H_
