#ifndef JARVIS_SYNOPSIS_WSP_H_
#define JARVIS_SYNOPSIS_WSP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "stream/record.h"

namespace jarvis::synopsis {

/// Window-based sampling protocol (WSP) after Cormode et al., the data
/// synopsis baseline of Section VI-D: each data source forwards each record
/// of a window with probability `sampling_rate`, giving the stream processor
/// a continuous uniform sample of the distributed stream. The decision is a
/// deterministic hash of (seed, window, sequence), so a sample is
/// reproducible and consistent across re-runs.
class WindowSampler {
 public:
  WindowSampler(double sampling_rate, uint64_t seed)
      : rate_(sampling_rate), seed_(seed) {}

  /// Returns true when the record with per-window sequence number `seq`
  /// belongs to the sample of `window_start`.
  bool Keep(Micros window_start, uint64_t seq) const {
    uint64_t h = SplitMix64(seed_ ^ static_cast<uint64_t>(window_start));
    h = SplitMix64(h ^ seq);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < rate_;
  }

  /// Filters a window's batch, preserving order.
  stream::RecordBatch Sample(Micros window_start,
                             const stream::RecordBatch& batch) const;

  double rate() const { return rate_; }

 private:
  double rate_;
  uint64_t seed_;
};

/// Per-group min/max/avg estimates computed from a sample, with exact
/// counterparts for error evaluation (Fig. 9a).
struct RangeEstimate {
  double avg = 0.0;
  double min = 0.0;
  double max = 0.0;
  uint64_t count = 0;
};

/// Groups `batch` by the given key field and aggregates `value_field`.
std::map<std::string, RangeEstimate> AggregateByKey(
    const stream::RecordBatch& batch, size_t key_field, size_t value_field);

/// Key derivation shared by the exact and sampled aggregation paths.
std::string GroupKey(const stream::Record& rec, size_t key_field);

}  // namespace jarvis::synopsis

#endif  // JARVIS_SYNOPSIS_WSP_H_
