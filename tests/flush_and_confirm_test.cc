// Coverage for the reconfiguration-flush and stable-confirmation behaviors
// of the runtime (Section IV-A: sources ship "any pending data that needs
// to be processed" to the parent on reconfiguration), plus the rationed
// fair-scheduler semantics of the source simulator.

#include <gtest/gtest.h>

#include "core/runtime.h"
#include "core/source_executor.h"
#include "sim/source_node.h"
#include "workloads/cost_profiles.h"
#include "workloads/pingmesh.h"
#include "workloads/queries.h"

namespace jarvis {
namespace {

TEST(FlushTest, SimFlushDrainsQueuesLosslessly) {
  sim::SourceNodeSim::Options opts;
  opts.cpu_budget_fraction = 0.3;  // over-subscribed: queues build
  sim::SourceNodeSim node(workloads::MakeS2SModel(), opts);
  node.SetLoadFactors({1, 1, 1});
  for (int e = 0; e < 3; ++e) node.RunEpoch(false);
  double queued = 0;
  for (size_t i = 0; i < 3; ++i) queued += node.queued_records(i);
  ASSERT_GT(queued, 0.0);

  node.RequestFlush();
  auto r = node.RunEpoch(false);
  // The flushed backlog appears on the drain path, tagged per stage.
  double drained = 0;
  for (size_t i = 0; i < 3; ++i) drained += r.drained_records[i];
  EXPECT_GT(drained, queued * 0.9);
}

TEST(FlushTest, ExecutorFlushDrainsProxyQueues) {
  auto plan = workloads::MakeS2SProbeQuery();
  ASSERT_TRUE(plan.ok());
  auto compiled = query::Compile(std::move(plan).value());
  ASSERT_TRUE(compiled.ok());
  auto costs = std::make_shared<core::FixedCostModel>(
      std::vector<double>{1e-5, 2e-5, 1e-3});
  core::SourceExecutorOptions opts;
  opts.cpu_budget_fraction = 0.05;
  core::SourceExecutor exec(*compiled, costs, opts);
  exec.SetLoadFactors({1, 1, 1});

  workloads::PingmeshConfig cfg;
  cfg.num_pairs = 500;
  cfg.probe_interval = Seconds(1);
  workloads::PingmeshGenerator gen(cfg);
  exec.Ingest(gen.Generate(0, Seconds(1)));
  auto first = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(first.ok());
  const uint64_t pending = first->observation.proxies[2].pending;
  ASSERT_GT(pending, 0u);

  exec.RequestFlush();
  auto second = exec.RunEpoch(Seconds(2), false);
  ASSERT_TRUE(second.ok());
  // All previously pending records went to the SP, tagged with entry op 2.
  uint64_t drained_at_2 = 0;
  for (const core::DrainRecord& dr : second->FlattenDrain()) {
    if (dr.sp_entry_op == 2 &&
        dr.record.kind == stream::RecordKind::kData) {
      ++drained_at_2;
    }
  }
  EXPECT_GE(drained_at_2, pending);
}

TEST(ConfirmTest, RuntimeRequiresConsecutiveStableEpochs) {
  core::RuntimeConfig config;
  config.stable_confirm_epochs = 3;
  core::JarvisRuntime rt(2, config);

  auto obs = [](core::QueryState s) {
    core::EpochObservation o;
    o.proxies.resize(2);
    for (auto& p : o.proxies) {
      p.arrived = 1000;
      p.load_factor = 0.5;
    }
    o.input_records = 1000;
    o.cpu_budget_seconds = 1.0;
    switch (s) {
      case core::QueryState::kStable:
        o.cpu_spent_seconds = 0.95;
        break;
      case core::QueryState::kIdle:
        o.cpu_spent_seconds = 0.2;
        break;
      case core::QueryState::kCongested:
        o.cpu_spent_seconds = 1.0;
        o.proxies[0].pending = 500;
        break;
    }
    if (s == core::QueryState::kStable) {
      // avoid idle classification: pretend lfs maxed
      for (auto& p : o.proxies) p.load_factor = 1.0;
    }
    return o;
  };

  // Drive to Adapt: startup + 2 idle -> profile -> adapt.
  rt.OnEpochEnd(obs(core::QueryState::kIdle));
  rt.OnEpochEnd(obs(core::QueryState::kIdle));
  auto d = rt.OnEpochEnd(obs(core::QueryState::kIdle));
  ASSERT_TRUE(d.request_profile);
  auto profiled = obs(core::QueryState::kIdle);
  profiled.profiles_valid = true;
  profiled.profiles.resize(2);
  d = rt.OnEpochEnd(profiled);
  ASSERT_EQ(rt.phase(), core::Phase::kAdapt);
  EXPECT_TRUE(d.flush_pending);  // plan installation ships the backlog

  // Two stable epochs are not enough; the third confirms.
  rt.OnEpochEnd(obs(core::QueryState::kStable));
  EXPECT_EQ(rt.phase(), core::Phase::kAdapt);
  rt.OnEpochEnd(obs(core::QueryState::kStable));
  EXPECT_EQ(rt.phase(), core::Phase::kAdapt);
  rt.OnEpochEnd(obs(core::QueryState::kStable));
  EXPECT_EQ(rt.phase(), core::Phase::kProbe);
  EXPECT_EQ(rt.adaptations_completed(), 1);
}

TEST(ConfirmTest, CongestionDuringConfirmationResumesFineTuning) {
  core::RuntimeConfig config;
  config.stable_confirm_epochs = 3;
  core::JarvisRuntime rt(2, config);
  core::EpochObservation idle;
  idle.proxies.resize(2);
  for (auto& p : idle.proxies) {
    p.arrived = 1000;
    p.load_factor = 0.5;
  }
  idle.input_records = 1000;
  idle.cpu_budget_seconds = 1.0;
  idle.cpu_spent_seconds = 0.2;
  for (int i = 0; i < 3; ++i) rt.OnEpochEnd(idle);
  core::EpochObservation profiled = idle;
  profiled.profiles_valid = true;
  profiled.profiles.resize(2);
  for (auto& p : profiled.profiles) p = {1e-4, 0.8, 0.5, 100};
  rt.OnEpochEnd(profiled);
  ASSERT_EQ(rt.phase(), core::Phase::kAdapt);

  core::EpochObservation stable = idle;
  stable.cpu_spent_seconds = 0.95;
  rt.OnEpochEnd(stable);  // stable #1
  core::EpochObservation congested = idle;
  congested.cpu_spent_seconds = 1.0;
  congested.proxies[1].pending = 600;
  auto before = rt.load_factors();
  rt.OnEpochEnd(congested);  // streak broken: a fine-tune step fires
  EXPECT_EQ(rt.phase(), core::Phase::kAdapt);
  EXPECT_NE(rt.load_factors(), before);
}

TEST(RationingTest, OverloadDegradesProportionallyNotTailFirst) {
  // All-Src at 60% of a query needing 85%: in steady state the fair
  // scheduler lets every stage advance, so completions settle near
  // budget/full_cost of the input instead of starving G+R.
  sim::SourceNodeSim::Options opts;
  opts.cpu_budget_fraction = 0.6;
  sim::SourceNodeSim node(workloads::MakeS2SModel(), opts);
  node.SetLoadFactors({1, 1, 1});
  double completed = 0;
  const int epochs = 60;
  for (int e = 0; e < epochs; ++e) {
    completed += node.RunEpoch(false).completed_input_equiv;
  }
  const double input = workloads::MakeS2SModel().input_records_per_sec;
  EXPECT_NEAR(completed / epochs / input, 0.6 / 0.85, 0.05);
}

TEST(RationingTest, BudgetNeverExceeded) {
  sim::SourceNodeSim::Options opts;
  opts.cpu_budget_fraction = 0.37;
  sim::SourceNodeSim node(workloads::MakeT2TModel(), opts);
  node.SetLoadFactors({1, 1, 0.8, 0.6, 1});
  for (int e = 0; e < 30; ++e) {
    auto r = node.RunEpoch(false);
    EXPECT_LE(r.observation.cpu_spent_seconds, 0.37 + 1e-6);
  }
}

TEST(RationingTest, FullBudgetProcessesEverythingExactly) {
  sim::SourceNodeSim::Options opts;
  opts.cpu_budget_fraction = 1.0;
  sim::SourceNodeSim node(workloads::MakeLogAnalyticsModel(), opts);
  node.SetLoadFactors(std::vector<double>(6, 1.0));
  for (int e = 0; e < 5; ++e) {
    auto r = node.RunEpoch(false);
    EXPECT_NEAR(r.observation.cpu_spent_seconds, 0.31, 0.01);
    for (const auto& p : r.observation.proxies) {
      EXPECT_EQ(p.pending, 0u);
    }
  }
}

}  // namespace
}  // namespace jarvis
