// Adversarial decode hardening for the drain wire formats: every decode path
// must return a Status — never assert, crash, over-read, or silently accept
// wrong bytes — on truncated or bit-flipped input. The suite runs a corpus
// of batch (v2) and columnar (v3) frames through exhaustive truncation and
// seeded bit-flips; the ASan/UBSan CI leg is the real judge of the "no UB"
// half of the contract. Legacy (pre-checksum) frames must keep decoding.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/drain_wire.h"
#include "core/source_executor.h"
#include "ser/buffer.h"
#include "stream/columnar.h"
#include "stream/record.h"
#include "testing/test_util.h"

namespace jarvis::stream {
namespace {

using jarvis::testing::FuzzSeeds;
using jarvis::testing::KvSchema;
using jarvis::testing::MakeRecord;
using jarvis::testing::MakeWindowedRecord;

/// One corpus entry: a row batch plus the schema its columnar form uses.
struct Corpus {
  std::string name;
  RecordBatch rows;
  Schema schema;
};

std::vector<Corpus> BuildCorpus() {
  std::vector<Corpus> corpus;
  corpus.push_back({"empty", RecordBatch{}, KvSchema()});

  Corpus kv{"kv", {}, KvSchema()};
  for (int i = 0; i < 24; ++i) {
    kv.rows.push_back(MakeRecord(Seconds(i), int64_t{i * 7}, i * 0.5));
  }
  corpus.push_back(std::move(kv));

  Corpus strings{"strings",
                 {},
                 Schema::Of({{"host", ValueType::kString},
                             {"lat", ValueType::kDouble}})};
  for (int i = 0; i < 16; ++i) {
    strings.rows.push_back(MakeRecord(
        Seconds(i), "host-" + std::string(1 + i % 5, 'x'), i * 1.25));
  }
  corpus.push_back(std::move(strings));

  Corpus mixed{"mixed", {}, KvSchema()};
  for (int i = 0; i < 12; ++i) {
    Record r = MakeWindowedRecord(Seconds(i), Seconds(i - i % 3),
                                  int64_t{i}, 2.0 * i);
    if (i % 4 == 0) r.kind = RecordKind::kPartial;
    mixed.rows.push_back(std::move(r));
  }
  // Non-conforming rows exercise the columnar fallback lane.
  mixed.rows.push_back(MakeRecord(Seconds(99), "stray", int64_t{1}, 3.5));
  corpus.push_back(std::move(mixed));
  return corpus;
}

std::vector<uint8_t> EncodeBatch(const Corpus& c) {
  ser::BufferWriter w;
  SerializeBatch(c.rows, c.schema, &w);
  return w.Release();
}

std::vector<uint8_t> EncodeColumnar(const Corpus& c) {
  RecordBatch rows = c.rows;  // FromRows consumes
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(rows), c.schema);
  ser::BufferWriter w;
  SerializeColumnar(cb, &w);
  return w.Release();
}

/// The two wire formats under test, driven through one reader-level decode
/// so the frame-boundary behavior (bounded consumption) is also covered.
struct Format {
  const char* name;
  std::vector<uint8_t> (*encode)(const Corpus&);
  Status (*decode)(ser::BufferReader*, RecordBatch*);
  uint8_t legacy_version;
};

constexpr Format kFormats[] = {
    {"batch", &EncodeBatch, &DeserializeBatch, kBatchFormatVersionLegacy},
    {"columnar", &EncodeColumnar, &DeserializeColumnar,
     kColumnarFormatVersionLegacy},
};

Status DecodeBytes(const Format& fmt, const std::vector<uint8_t>& bytes,
                   RecordBatch* out) {
  ser::BufferReader r(bytes.data(), bytes.size());
  return fmt.decode(&r, out);
}

// ---------------------------------------------------------------------------
// Round trips and framing
// ---------------------------------------------------------------------------

TEST(SerCorruptionTest, RoundTripsAndStopsAtFrameBoundary) {
  for (const Corpus& c : BuildCorpus()) {
    for (const Format& fmt : kFormats) {
      SCOPED_TRACE(c.name + std::string("/") + fmt.name);
      std::vector<uint8_t> bytes = fmt.encode(c);
      RecordBatch out;
      ASSERT_TRUE(DecodeBytes(fmt, bytes, &out).ok());
      EXPECT_EQ(out, c.rows);
      // The checksummed frame knows its own length: trailing bytes after
      // the frame belong to the next frame, not to this decode.
      bytes.push_back(0xAB);
      ser::BufferReader r(bytes.data(), bytes.size());
      RecordBatch again;
      ASSERT_TRUE(fmt.decode(&r, &again).ok());
      EXPECT_EQ(again, c.rows);
      EXPECT_EQ(r.remaining(), 1u);
    }
  }
}

TEST(SerCorruptionTest, LegacyUnchecksummedFramesStillDecode) {
  // A v3 columnar / v2 batch frame is [version][u32 len][u32 crc][body]
  // where the body is byte-identical to the previous format version; strip
  // the integrity header and rewrite the version byte to fabricate frames
  // from before the format bump.
  for (const Corpus& c : BuildCorpus()) {
    for (const Format& fmt : kFormats) {
      SCOPED_TRACE(c.name + std::string("/") + fmt.name);
      const std::vector<uint8_t> framed = fmt.encode(c);
      ASSERT_GE(framed.size(), 9u);
      std::vector<uint8_t> legacy{fmt.legacy_version};
      legacy.insert(legacy.end(), framed.begin() + 9, framed.end());
      RecordBatch out;
      ASSERT_TRUE(DecodeBytes(fmt, legacy, &out).ok());
      EXPECT_EQ(out, c.rows);
    }
  }
}

// ---------------------------------------------------------------------------
// Truncation: every prefix must fail cleanly
// ---------------------------------------------------------------------------

TEST(SerCorruptionTest, EveryTruncationFailsWithStatus) {
  for (const Corpus& c : BuildCorpus()) {
    for (const Format& fmt : kFormats) {
      SCOPED_TRACE(c.name + std::string("/") + fmt.name);
      const std::vector<uint8_t> bytes = fmt.encode(c);
      for (size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
        RecordBatch out;
        const Status st = DecodeBytes(fmt, prefix, &out);
        EXPECT_FALSE(st.ok()) << "prefix length " << len << " of "
                              << bytes.size() << " decoded";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Bit flips: detected by checksum or rejected by a bounds check, never UB
// ---------------------------------------------------------------------------

TEST(SerCorruptionTest, SingleBitFlipsNeverCrash) {
  for (const Corpus& c : BuildCorpus()) {
    for (const Format& fmt : kFormats) {
      SCOPED_TRACE(c.name + std::string("/") + fmt.name);
      const std::vector<uint8_t> bytes = fmt.encode(c);
      for (size_t i = 0; i < bytes.size(); ++i) {
        for (const int bit : {0, 3, 7}) {
          std::vector<uint8_t> bad = bytes;
          bad[i] ^= static_cast<uint8_t>(1u << bit);
          RecordBatch out;
          // The contract under sanitizers: a Status comes back — ok only
          // in the astronomically unlikely event of a checksum collision
          // or when the flip lands in redundant header space — and the
          // process neither crashes nor reads out of bounds.
          (void)DecodeBytes(fmt, bad, &out);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint payload envelope (drain wire v4, WireLane::kCheckpoint)
// ---------------------------------------------------------------------------

/// A representative checkpoint body: the operator state-delta grammar
/// ([varint tombstones]... [varint sections][section]...), as a source's
/// ExportCheckpointBody would emit it.
std::vector<uint8_t> SampleCheckpointBody() {
  ser::BufferWriter body;
  body.PutVarU64(1);          // one tombstone
  body.PutVarI64(Seconds(10));
  body.PutVarU64(1);          // one section
  body.PutVarI64(Seconds(20));
  ser::BufferWriter section;
  section.PutVarU64(2);
  section.PutDouble(3.25);
  section.PutDouble(-1.5);
  body.PutVarU64(section.size());
  body.PutBytes(section.data().data(), section.size());
  return body.Release();
}

TEST(SerCorruptionTest, CheckpointPayloadRoundTrips) {
  const std::vector<uint8_t> body = SampleCheckpointBody();
  for (const bool full : {false, true}) {
    const std::vector<uint8_t> payload =
        core::SealCheckpointPayload(full, /*epoch=*/7, /*fence=*/41, body);
    auto hdr = core::PeekCheckpointHeader(payload.data(), payload.size());
    ASSERT_TRUE(hdr.ok()) << hdr.status().message();
    EXPECT_EQ(hdr->full, full);
    EXPECT_EQ(hdr->epoch, 7);
    EXPECT_EQ(hdr->fence, 41u);
    ASSERT_LE(hdr->body_offset, payload.size());
    EXPECT_EQ(std::vector<uint8_t>(payload.begin() + hdr->body_offset,
                                   payload.end()),
              body);
  }
}

TEST(SerCorruptionTest, EveryCheckpointTruncationFailsWithStatus) {
  const std::vector<uint8_t> payload = core::SealCheckpointPayload(
      true, /*epoch=*/3, /*fence=*/17, SampleCheckpointBody());
  for (size_t len = 0; len < payload.size(); ++len) {
    const Status st = core::PeekCheckpointHeader(payload.data(), len).status();
    EXPECT_FALSE(st.ok()) << "prefix length " << len << " of "
                          << payload.size() << " validated";
  }
}

TEST(SerCorruptionTest, CheckpointBitFlipsAreDetectedNeverUB) {
  const std::vector<uint8_t> pristine = core::SealCheckpointPayload(
      false, /*epoch=*/12, /*fence=*/99, SampleCheckpointBody());
  for (size_t i = 0; i < pristine.size(); ++i) {
    for (const int bit : {0, 3, 7}) {
      std::vector<uint8_t> bad = pristine;
      bad[i] ^= static_cast<uint8_t>(1u << bit);
      // The CRC covers flags, epoch, fence, AND the body, so every single-
      // bit flip past the version byte must be caught (no redundant header
      // space to hide in); a version-byte flip fails the version check.
      auto hdr = core::PeekCheckpointHeader(bad.data(), bad.size());
      EXPECT_FALSE(hdr.ok()) << "flip at byte " << i << " bit " << bit
                             << " validated";
    }
  }
}

/// Corruption of the SP's retained ring: PlanRestore re-verifies every
/// entry, so a corrupt newest entry degrades to the previous epoch's chain
/// while a corrupt keyframe invalidates the whole ring.
TEST(SerCorruptionTest, CheckpointStoreFallsBackPastCorruptEntries) {
  const std::vector<uint8_t> body = SampleCheckpointBody();
  core::CheckpointStore store;
  store.set_retain(4);
  for (int64_t e = 0; e < 3; ++e) {
    store.Add(/*full=*/e == 0, e, static_cast<uint32_t>(10 + e),
              core::SealCheckpointPayload(e == 0, e,
                                          static_cast<uint32_t>(10 + e),
                                          body));
  }
  ASSERT_EQ(store.size(), 3u);
  auto plan = store.PlanRestore();
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.epoch, 2);
  EXPECT_EQ(plan.chain.size(), 3u);
  EXPECT_EQ(plan.skipped, 0u);

  // Corrupt the newest delta: the chain shortens by one, restore roots at
  // the previous epoch, and the skip is reported for fallback accounting.
  store.mutable_entry(2).payload.back() ^= 0x01;
  plan = store.PlanRestore();
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.epoch, 1);
  EXPECT_EQ(plan.fence, 11u);
  EXPECT_EQ(plan.chain.size(), 2u);
  EXPECT_EQ(plan.skipped, 1u);

  // Corrupt the keyframe: no chain can root, the whole ring is unusable.
  store.mutable_entry(0).payload.back() ^= 0x01;
  plan = store.PlanRestore();
  EXPECT_FALSE(plan.valid);
  EXPECT_TRUE(plan.chain.empty());
  EXPECT_EQ(plan.skipped, 3u);
}

// ---------------------------------------------------------------------------
// Columnar bulk decode (DeserializeColumnarBatch): the decode-worker path
// must invert the same frames the row-at-a-time decoder inverts, bit for bit
// ---------------------------------------------------------------------------

TEST(SerCorruptionTest, ColumnarBatchDecodeMatchesRowDecode) {
  for (const Corpus& c : BuildCorpus()) {
    SCOPED_TRACE(c.name);
    const std::vector<uint8_t> bytes = EncodeColumnar(
        Corpus{c.name, c.rows, c.schema});
    RecordBatch row_decoded;
    {
      ser::BufferReader r(bytes.data(), bytes.size());
      ASSERT_TRUE(DeserializeColumnar(&r, &row_decoded).ok());
      ASSERT_TRUE(r.AtEnd());
    }
    ColumnarBatch batch;
    {
      ser::BufferReader r(bytes.data(), bytes.size());
      ASSERT_TRUE(DeserializeColumnarBatch(&r, &batch).ok());
      ASSERT_TRUE(r.AtEnd());
    }
    RecordBatch batch_decoded;
    batch.MoveToRows(&batch_decoded);
    EXPECT_EQ(batch_decoded, row_decoded);
    EXPECT_EQ(batch_decoded, c.rows);

    // Legacy (pre-checksum) body: both decoders accept it identically.
    ASSERT_GE(bytes.size(), 9u);
    std::vector<uint8_t> legacy{kColumnarFormatVersionLegacy};
    legacy.insert(legacy.end(), bytes.begin() + 9, bytes.end());
    ColumnarBatch legacy_batch;
    ser::BufferReader r(legacy.data(), legacy.size());
    ASSERT_TRUE(DeserializeColumnarBatch(&r, &legacy_batch).ok());
    RecordBatch legacy_rows;
    legacy_batch.MoveToRows(&legacy_rows);
    EXPECT_EQ(legacy_rows, c.rows);
  }
}

TEST(SerCorruptionTest, ColumnarBatchDecodeSurvivesTruncationAndFlips) {
  for (const Corpus& c : BuildCorpus()) {
    SCOPED_TRACE(c.name);
    const std::vector<uint8_t> bytes = EncodeColumnar(
        Corpus{c.name, c.rows, c.schema});
    for (size_t len = 0; len < bytes.size(); ++len) {
      ColumnarBatch out;
      ser::BufferReader r(bytes.data(), len);
      EXPECT_FALSE(DeserializeColumnarBatch(&r, &out).ok())
          << "prefix length " << len << " of " << bytes.size() << " decoded";
    }
    for (size_t i = 0; i < bytes.size(); ++i) {
      for (const int bit : {0, 3, 7}) {
        std::vector<uint8_t> bad = bytes;
        bad[i] ^= static_cast<uint8_t>(1u << bit);
        ColumnarBatch out;
        ser::BufferReader r(bad.data(), bad.size());
        (void)DeserializeColumnarBatch(&r, &out);  // Status; sanitizers judge
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Compressed wire frames (drain wire v2/LZ4): truncation and flips surface
// as Status — the NACK that triggers retransmission — never as UB
// ---------------------------------------------------------------------------

/// An epoch drain with redundant-but-distinct strings (the dictionary lane
/// can't fold them, so LZ4 does real work), plus a row-lane chunk.
core::SourceEpochOutput MakeCompressibleDrain() {
  core::SourceEpochOutput out;
  const Schema log_schema = Schema::Of(
      {{"line", ValueType::kString}, {"code", ValueType::kInt64}});
  RecordBatch rows;
  for (int i = 0; i < 96; ++i) {
    rows.push_back(MakeRecord(
        Seconds(i), "GET /api/v1/users/" + std::to_string(i * 37) +
                        "/profile HTTP/1.1 response_served_from=edge-cache",
        int64_t{200 + i % 3}));
  }
  out.AppendDrainColumns(
      0, ColumnarBatch::FromRows(std::move(rows), log_schema));
  RecordBatch tail;
  for (int i = 0; i < 8; ++i) {
    tail.push_back(MakeRecord(Seconds(100 + i), int64_t{i}, 0.5 * i));
  }
  out.AppendDrainRows(1, std::move(tail));
  return out;
}

RecordBatch FlattenChunks(std::vector<core::DrainChunk>&& chunks) {
  RecordBatch rows;
  for (core::DrainChunk& c : chunks) {
    c.columns.MoveToRows(&rows);
    for (Record& r : c.rows) rows.push_back(std::move(r));
    c.rows.clear();
  }
  return rows;
}

TEST(SerCorruptionTest, CompressedDrainRoundTripsAndMatchesUncompressed) {
  core::SourceEpochOutput plain_out = MakeCompressibleDrain();
  core::SourceEpochOutput lz4_out = MakeCompressibleDrain();
  uint32_t seq_plain = 0, seq_lz4 = 0;
  const core::WireDrain plain =
      core::SerializeDrain(&plain_out, &seq_plain, {.compress = false});
  const core::WireDrain lz4 =
      core::SerializeDrain(&lz4_out, &seq_lz4, {.compress = true});
  ASSERT_EQ(plain.frame_count, lz4.frame_count);
  std::vector<core::DrainChunk> plain_chunks, lz4_chunks;
  ASSERT_TRUE(core::DecodeDrain(plain, &plain_chunks).ok());
  ASSERT_TRUE(core::DecodeDrain(lz4, &lz4_chunks).ok());
  const RecordBatch want = FlattenChunks(std::move(plain_chunks));
  const RecordBatch got = FlattenChunks(std::move(lz4_chunks));
  EXPECT_EQ(got, want);
  EXPECT_EQ(want.size(), 104u);
#ifdef JARVIS_HAVE_LZ4
  // The redundant string payload must actually compress (store-wins means
  // a v2 frame exists only when it shrank).
  EXPECT_LT(lz4.wire_bytes, plain.wire_bytes);
  EXPECT_EQ(lz4.frames[0].bytes[0], core::kWireFrameVersionCompressed);
#endif
}

TEST(SerCorruptionTest, EveryCompressedFrameTruncationFailsWithStatus) {
  core::SourceEpochOutput out = MakeCompressibleDrain();
  uint32_t seq = 0;
  const core::WireDrain wire =
      core::SerializeDrain(&out, &seq, {.compress = true});
  std::vector<uint8_t> scratch;
  for (const core::WireFrame& f : wire.frames) {
    for (size_t len = 0; len < f.bytes.size(); ++len) {
      core::WireFrame cut;
      cut.seq = f.seq;
      cut.bytes.assign(f.bytes.begin(), f.bytes.begin() + len);
      auto hdr = core::PeekFrameHeader(cut);
      if (!hdr.ok()) continue;  // caught at the header layer
      core::DrainChunk chunk;
      EXPECT_FALSE(core::DecodeDrainChunk(cut, *hdr, &chunk, &scratch).ok())
          << "prefix length " << len << " of " << f.bytes.size()
          << " decoded";
    }
  }
}

TEST(SerCorruptionTest, CompressedFrameBitFlipsAreStatusNeverUB) {
  core::SourceEpochOutput out = MakeCompressibleDrain();
  uint32_t seq = 0;
  const core::WireDrain wire =
      core::SerializeDrain(&out, &seq, {.compress = true});
  std::vector<uint8_t> scratch;
  for (const core::WireFrame& f : wire.frames) {
    // Pristine control: the frame decodes before we start flipping.
    {
      auto hdr = core::PeekFrameHeader(f);
      ASSERT_TRUE(hdr.ok());
      core::DrainChunk chunk;
      ASSERT_TRUE(core::DecodeDrainChunk(f, *hdr, &chunk, &scratch).ok());
    }
    for (size_t i = 0; i < f.bytes.size(); ++i) {
      for (const int bit : {0, 3, 7}) {
        core::WireFrame bad = f;
        bad.bytes[i] ^= static_cast<uint8_t>(1u << bit);
        auto hdr = core::PeekFrameHeader(bad);
        if (!hdr.ok()) continue;  // header CRC caught it: NACK, retransmit
        core::DrainChunk chunk;
        // A surviving header means the flip landed in the payload: the LZ4
        // layer or the inner payload checksum must reject it (kCorrupt ->
        // NACK -> retransmit upstream), and sanitizers judge the no-UB half.
        (void)core::DecodeDrainChunk(bad, *hdr, &chunk, &scratch);
      }
    }
  }
}

TEST(SerCorruptionTest, MixedCompressedAndLegacyFramesDecodeTogether) {
  // A receiver sees v1 (legacy/uncompressed) and v2 (compressed) frames
  // interleaved in one drain — exactly what a store-wins encoder emits, and
  // what a rolling upgrade of sources would produce.
  core::SourceEpochOutput a = MakeCompressibleDrain();
  core::SourceEpochOutput b = MakeCompressibleDrain();
  uint32_t seq = 0;
  core::WireDrain mixed = core::SerializeDrain(&a, &seq, {.compress = true});
  core::WireDrain tail = core::SerializeDrain(&b, &seq, {.compress = false});
  for (core::WireFrame& f : tail.frames) {
    mixed.frames.push_back(std::move(f));
  }
  mixed.frame_count += tail.frame_count;
  mixed.wire_bytes += tail.wire_bytes;
  mixed.records += tail.records;
  std::vector<core::DrainChunk> chunks;
  ASSERT_TRUE(core::DecodeDrain(mixed, &chunks).ok());
  const RecordBatch rows = FlattenChunks(std::move(chunks));
  EXPECT_EQ(rows.size(), 208u);
#ifdef JARVIS_HAVE_LZ4
  EXPECT_EQ(mixed.frames.front().bytes[0], core::kWireFrameVersionCompressed);
#endif
  EXPECT_EQ(mixed.frames.back().bytes[0], core::kWireFrameVersion);
}

TEST(SerCorruptionTest, CompressedCheckpointFrameVerifiesEndToEnd) {
  const std::vector<uint8_t> sealed = core::SealCheckpointPayload(
      true, /*epoch=*/5, /*fence=*/23, SampleCheckpointBody());
  const core::WireFrame frame =
      core::MakeCheckpointFrame(7, sealed, {.compress = true, .min_bytes = 0});
  auto hdr = core::PeekFrameHeader(frame);
  ASSERT_TRUE(hdr.ok());
  EXPECT_EQ(hdr->lane, core::WireLane::kCheckpoint);
  std::vector<uint8_t> scratch;
  auto payload = core::FramePayload(frame, *hdr, &scratch);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(std::vector<uint8_t>(payload->first,
                                 payload->first + payload->second),
            sealed);
  // Truncations and flips of the checkpoint frame fail at the frame header,
  // the LZ4 layer, or the sealed payload CRC — never UB, never garbage.
  for (size_t len = 0; len < frame.bytes.size(); ++len) {
    core::WireFrame cut;
    cut.seq = frame.seq;
    cut.bytes.assign(frame.bytes.begin(), frame.bytes.begin() + len);
    auto h = core::PeekFrameHeader(cut);
    if (!h.ok()) continue;
    auto p = core::FramePayload(cut, *h, &scratch);
    if (!p.ok()) continue;
    EXPECT_FALSE(core::PeekCheckpointHeader(p->first, p->second).ok())
        << "prefix length " << len << " validated";
  }
  for (size_t i = 0; i < frame.bytes.size(); ++i) {
    for (const int bit : {0, 3, 7}) {
      core::WireFrame bad = frame;
      bad.bytes[i] ^= static_cast<uint8_t>(1u << bit);
      auto h = core::PeekFrameHeader(bad);
      if (!h.ok()) continue;
      auto p = core::FramePayload(bad, *h, &scratch);
      if (!p.ok()) continue;
      EXPECT_FALSE(core::PeekCheckpointHeader(p->first, p->second).ok())
          << "flip at byte " << i << " bit " << bit << " validated";
    }
  }
}

TEST(SerCorruptionTest, RandomMultiByteCorruptionIsSafe) {
  for (const uint64_t seed : FuzzSeeds()) {
    Rng rng(seed ^ 0xc0ffee);
    for (const Corpus& c : BuildCorpus()) {
      for (const Format& fmt : kFormats) {
        std::vector<uint8_t> bytes = fmt.encode(c);
        if (bytes.empty()) continue;
        const size_t flips = 1 + rng.NextBounded(8);
        for (size_t f = 0; f < flips; ++f) {
          bytes[rng.NextBounded(bytes.size())] ^=
              static_cast<uint8_t>(1 + rng.NextBounded(255));
        }
        RecordBatch out;
        (void)DecodeBytes(fmt, bytes, &out);  // Status; sanitizers judge
      }
    }
  }
}

}  // namespace
}  // namespace jarvis::stream
