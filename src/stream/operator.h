#ifndef JARVIS_STREAM_OPERATOR_H_
#define JARVIS_STREAM_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "stream/record.h"

namespace jarvis::ser {
class BufferWriter;
class BufferReader;
}  // namespace jarvis::ser

namespace jarvis::stream {

class ColumnarBatch;

/// How much state ExportStateDelta serializes: the delta since the previous
/// export, or a full keyframe re-encoding everything (what the checkpoint
/// ring compacts onto).
enum class StateExport : uint8_t { kDelta, kFull };

/// Streaming primitive kinds (Section II-A). The kind drives both the query
/// optimizer's placement rules and the calibrated cost model.
enum class OpKind {
  kWindow,
  kFilter,
  kMap,
  kJoin,
  kGroupAggregate,
  kProject,
};

std::string_view OpKindToString(OpKind kind);

/// Per-operator counters over a measurement interval (an epoch). The Jarvis
/// profiler derives relay ratios (r_j) and per-record costs (c_j) from these.
struct OperatorStats {
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;

  void Reset() { *this = OperatorStats{}; }

  /// Ratio of output to input data size (r_j in Table II); 1.0 when no input
  /// has been observed yet.
  double RelayRatioBytes() const {
    return bytes_in == 0 ? 1.0
                         : static_cast<double>(bytes_out) /
                               static_cast<double>(bytes_in);
  }
  double RelayRatioRecords() const {
    return records_in == 0 ? 1.0
                           : static_cast<double>(records_out) /
                                 static_cast<double>(records_in);
  }
};

/// Base class for all stream operators. The hot path is batch-at-a-time
/// (ProcessBatch); control proxies apportion whole record runs between the
/// local copy and the replicated copy on the stream processor, so batching
/// does not change what the control plane can express. Process remains as
/// the record-at-a-time compatibility path.
class Operator {
 public:
  Operator(std::string name, Schema output_schema)
      : name_(std::move(name)), output_schema_(std::move(output_schema)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  virtual OpKind kind() const = 0;

  /// Processes one record, appending any outputs to `out`. Updates stats.
  Status Process(Record&& rec, RecordBatch* out);

  /// Processes a whole batch, appending outputs to `out` in order. Produces
  /// exactly the outputs and stats of calling Process on each record in
  /// order, but with one stats pass and (for operators that override
  /// DoProcessBatch) no per-record virtual dispatch.
  Status ProcessBatch(RecordBatch&& batch, RecordBatch* out);

  /// True when this operator can rewrite a batch in place (1:1 transforms,
  /// in-place compaction, or full consumption). In-place stages cost zero
  /// inter-stage record moves in Pipeline::PushBatch.
  virtual bool HasInPlaceBatch() const { return false; }

  /// Rewrites `batch` in place; only valid when HasInPlaceBatch(). Output
  /// records (and stats) are identical to the copying paths.
  Status ProcessBatchInPlace(RecordBatch* batch);

  /// True when this operator can rewrite a ColumnarBatch natively (the
  /// vectorized fast path: stateless operators whose work factors into
  /// per-column loops). A pipeline of columnar-capable operators never
  /// materializes row records between ingest and the drain wire.
  virtual bool HasColumnarBatch() const { return false; }

  /// Rewrites `batch` in place on the columnar representation; only valid
  /// when HasColumnarBatch(). Outputs (after conversion back to rows) and
  /// stats are identical to the row-batch paths — fallback rows ride the
  /// batch's row lane and go through the exact row-path logic.
  Status ProcessColumnar(ColumnarBatch* batch);

  /// Toggles byte-level stats accounting (records are always counted).
  /// Walking every record's WireSize costs more than most operators
  /// themselves; the source executor enables it only for profiling epochs,
  /// where relay-byte ratios actually feed the LP. Defaults to on.
  void set_byte_accounting(bool enabled) { count_bytes_ = enabled; }
  bool byte_accounting() const { return count_bytes_; }

  /// Advances event time. Stateful operators flush windows closed by `wm`.
  virtual Status OnWatermark(Micros wm, RecordBatch* out) {
    (void)wm;
    (void)out;
    return Status::OK();
  }

  /// Drains all accumulated state as kPartial records (used for
  /// checkpointing and end-of-run flush); the stream-processor replica of
  /// this operator can merge them losslessly.
  virtual Status ExportPartialState(RecordBatch* out) {
    (void)out;
    return Status::OK();
  }

  /// Serializes operator state into `w` using the checkpoint state-delta
  /// grammar (self-delimiting):
  ///   [varint n_tombstones] n*[zigzag key]
  ///   [varint n_sections]   n*([zigzag key][varint len][len bytes])
  /// kDelta covers state created or changed since the previous export, with
  /// tombstones for state discarded since; kFull re-encodes everything and
  /// resets the delta tracking. Must not mutate processing-visible state.
  /// The base implementation writes an empty delta for stateless operators
  /// and *errors* for stateful ones — a stateful operator without an
  /// override is a bug, not a silently empty checkpoint.
  virtual Status ExportStateDelta(ser::BufferWriter* w, StateExport mode);

  /// Applies one exported delta on top of current state: tombstones erase by
  /// key, sections overwrite by key. Restoring a checkpoint chain applies
  /// the full keyframe and then each delta in order onto a freshly built
  /// operator. The base implementation parses (and requires) an empty delta.
  virtual Status RestoreState(ser::BufferReader* r);

  /// True when this operator keeps cross-record state (grouping, joins with
  /// accumulated build sides).
  virtual bool IsStateful() const { return false; }

  /// True when the operator's aggregation state can be updated incrementally
  /// and merged across partial executions (rule R-1 in Section IV-B).
  virtual bool IsIncremental() const { return true; }

  const std::string& name() const { return name_; }
  const Schema& output_schema() const { return output_schema_; }
  const OperatorStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  virtual Status DoProcess(Record&& rec, RecordBatch* out) = 0;

  /// Batch hook with a per-record fallback; operators with tight-loop
  /// implementations (Filter, Project, GroupAggregate, ...) override this.
  virtual Status DoProcessBatch(RecordBatch&& batch, RecordBatch* out) {
    for (Record& rec : batch) {
      JARVIS_RETURN_IF_ERROR(DoProcess(std::move(rec), out));
    }
    return Status::OK();
  }

  /// In-place hook; implemented by operators that report HasInPlaceBatch().
  virtual Status DoProcessBatchInPlace(RecordBatch* batch) {
    (void)batch;
    return Status::Internal("operator has no in-place batch path");
  }

  /// Columnar hook; implemented by operators that report HasColumnarBatch().
  virtual Status DoProcessColumnar(ColumnarBatch* batch) {
    (void)batch;
    return Status::Internal("operator has no columnar batch path");
  }

  /// Lets subclasses account records emitted from OnWatermark /
  /// ExportPartialState in the output-side stats.
  void CountOutputs(const RecordBatch& out, size_t first);

  /// Sum of WireSize over a whole batch (input-side stats pass).
  static uint64_t BatchBytes(const RecordBatch& batch);

  std::string name_;
  Schema output_schema_;
  OperatorStats stats_;
  bool count_bytes_ = true;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace jarvis::stream

#endif  // JARVIS_STREAM_OPERATOR_H_
