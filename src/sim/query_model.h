#ifndef JARVIS_SIM_QUERY_MODEL_H_
#define JARVIS_SIM_QUERY_MODEL_H_

#include <string>
#include <vector>

#include "core/types.h"

namespace jarvis::sim {

/// Analytic description of one operator for the cluster simulator: CPU cost
/// per record on the data source, record-count relay ratio, and the wire
/// size of its *input* records (drained records at this operator's proxy
/// cross the network at this size).
struct OpModel {
  std::string name;
  double cost_per_record = 0.0;  // cpu-seconds per record
  double relay_records = 1.0;    // output records per input record
  double record_bytes_in = 86.0;
};

/// Analytic description of one monitoring query instance on one data source.
/// Calibrated instances for the paper's three workloads live in
/// workloads/cost_profiles.h.
struct QueryModel {
  std::vector<OpModel> ops;
  double final_record_bytes = 86.0;  // wire size after the last operator
  double input_records_per_sec = 0.0;

  size_t num_ops() const { return ops.size(); }

  /// Wire size of records entering operator i; i == num_ops() gives the
  /// final output record size.
  double BytesAt(size_t i) const {
    return i < ops.size() ? ops[i].record_bytes_in : final_record_bytes;
  }

  /// Byte relay ratio of operator i, derived from record relay and the
  /// record-size change across the operator.
  double RelayBytes(size_t i) const {
    const double in = BytesAt(i);
    return in <= 0 ? 0.0 : ops[i].relay_records * BytesAt(i + 1) / in;
  }

  /// Cumulative record relay products: R[0] = 1, R[i] = prod_{j<i} relay_j.
  std::vector<double> CumulativeRelayRecords() const;

  /// Input data rate in Mbps.
  double InputMbps() const {
    return input_records_per_sec * BytesAt(0) * 8.0 / 1e6;
  }

  /// CPU fraction of one core needed to run the whole chain on all records.
  double FullCpuFraction() const;

  /// CPU-seconds the stream processor spends per record entering the chain
  /// at operator i (suffix cost); entry == num_ops() costs zero (finished
  /// records and partial state merged in O(1)).
  std::vector<double> SpEntryCosts() const;

  /// Ground-truth operator profiles (used by oracle baselines and tests).
  std::vector<core::OperatorProfile> TrueProfiles() const;
};

}  // namespace jarvis::sim

#endif  // JARVIS_SIM_QUERY_MODEL_H_
