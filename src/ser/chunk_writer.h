#ifndef JARVIS_SER_CHUNK_WRITER_H_
#define JARVIS_SER_CHUNK_WRITER_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "ser/buffer.h"

namespace jarvis::ser {

/// Accumulates encoded bytes in a stack chunk and flushes to the
/// BufferWriter in bulk: column emission costs one vector append per ~4KB of
/// payload instead of one per value. Shared by the schema-elided batch format
/// (record.cc) and the columnar drain format (columnar.cc).
class ChunkWriter {
 public:
  explicit ChunkWriter(BufferWriter* out) : out_(out) {}
  ~ChunkWriter() { Flush(); }

  ChunkWriter(const ChunkWriter&) = delete;
  ChunkWriter& operator=(const ChunkWriter&) = delete;

  void Byte(uint8_t b) {
    if (n_ + 1 > sizeof(buf_)) Flush();
    buf_[n_++] = b;
  }
  void VarU64(uint64_t v) {
    if (n_ + 10 > sizeof(buf_)) Flush();
    n_ += EncodeVarU64(v, buf_ + n_);
  }
  void VarI64(int64_t v) { VarU64(ZigZagEncode(v)); }
  /// One record's header row (flag byte + two time-delta varints),
  /// bounds-checked once.
  void Header(uint8_t flags, int64_t event_time_delta,
              int64_t window_start_delta) {
    if (n_ + 21 > sizeof(buf_)) Flush();
    buf_[n_++] = flags;
    n_ += EncodeVarU64(ZigZagEncode(event_time_delta), buf_ + n_);
    n_ += EncodeVarU64(ZigZagEncode(window_start_delta), buf_ + n_);
  }
  void Double(double v) {
    if (n_ + 8 > sizeof(buf_)) Flush();
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    StoreLe(bits, buf_ + n_);
    n_ += 8;
  }
  void Bytes(const uint8_t* p, size_t len) {
    if (len >= sizeof(buf_) / 2) {
      Flush();
      out_->PutBytes(p, len);
      return;
    }
    if (n_ + len > sizeof(buf_)) Flush();
    std::memcpy(buf_ + n_, p, len);
    n_ += len;
  }
  void String(const std::string& s) {
    VarU64(s.size());
    Bytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  void Flush() {
    if (n_ > 0) {
      out_->PutBytes(buf_, n_);
      n_ = 0;
    }
  }

 private:
  BufferWriter* out_;
  size_t n_ = 0;
  uint8_t buf_[4096];
};

}  // namespace jarvis::ser

#endif  // JARVIS_SER_CHUNK_WRITER_H_
