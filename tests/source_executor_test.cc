#include <gtest/gtest.h>

#include "core/source_executor.h"
#include "core/stepwise_adapt.h"
#include "workloads/pingmesh.h"
#include "workloads/queries.h"

namespace jarvis::core {
namespace {

constexpr double kCostW = 1e-5;
constexpr double kCostF = 2e-5;
constexpr double kCostG = 1e-4;

query::CompiledQuery CompileS2S() {
  auto plan = workloads::MakeS2SProbeQuery();
  EXPECT_TRUE(plan.ok());
  auto compiled = query::Compile(std::move(plan).value());
  EXPECT_TRUE(compiled.ok());
  return std::move(compiled).value();
}

std::shared_ptr<const CostModel> S2SCosts() {
  return std::make_shared<FixedCostModel>(
      std::vector<double>{kCostW, kCostF, kCostG});
}

stream::RecordBatch ProbeBatch(int n, Micros t0 = 0) {
  workloads::PingmeshConfig cfg;
  cfg.num_pairs = n;
  cfg.probe_interval = Seconds(1);
  workloads::PingmeshGenerator gen(cfg);
  stream::RecordBatch batch = gen.Generate(t0, t0 + Seconds(1));
  EXPECT_EQ(batch.size(), static_cast<size_t>(n));
  return batch;
}

TEST(SourceExecutorTest, AllLoadFactorsZeroDrainsRawInput) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({0, 0, 0});
  exec.Ingest(ProbeBatch(100));
  auto out = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->to_sp.size(), 100u);
  for (const DrainRecord& dr : out->to_sp) {
    EXPECT_EQ(dr.sp_entry_op, 0u);
    EXPECT_EQ(dr.record.kind, stream::RecordKind::kData);
  }
  EXPECT_NEAR(out->observation.cpu_spent_seconds, 0.0, 1e-12);
}

TEST(SourceExecutorTest, FullLoadProcessesLocallyAndEmitsPartials) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(100));
  auto out = exec.RunEpoch(Seconds(20), false);
  ASSERT_TRUE(out.ok());
  // Everything processed locally; G+R exports partial rows on window close.
  ASSERT_FALSE(out->to_sp.empty());
  for (const DrainRecord& dr : out->to_sp) {
    EXPECT_EQ(dr.record.kind, stream::RecordKind::kPartial);
    EXPECT_EQ(dr.sp_entry_op, 2u);  // merged into the SP's G+R
  }
  EXPECT_GT(out->observation.cpu_spent_seconds, 0.0);
}

TEST(SourceExecutorTest, PartialLoadFactorSplitsAtTheRightProxy) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 0.5});
  exec.Ingest(ProbeBatch(200));
  auto out = exec.RunEpoch(Seconds(20), false);
  ASSERT_TRUE(out.ok());
  size_t drained_at_2 = 0, partials = 0;
  for (const DrainRecord& dr : out->to_sp) {
    if (dr.record.kind == stream::RecordKind::kData) {
      EXPECT_EQ(dr.sp_entry_op, 2u);  // drained before the G+R operator
      ++drained_at_2;
    } else {
      ++partials;
    }
  }
  // The filter keeps ~86%, half of which is drained.
  const auto& proxies = out->observation.proxies;
  EXPECT_EQ(proxies[2].drained, drained_at_2);
  EXPECT_NEAR(static_cast<double>(drained_at_2),
              0.5 * static_cast<double>(proxies[2].arrived), 1.0);
  EXPECT_GT(partials, 0u);
}

TEST(SourceExecutorTest, BudgetExhaustionLeavesPendingRecords) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutorOptions opts;
  // Budget fits W+F for 1000 records but only a fraction of G+R:
  // 1000*(1e-5+2e-5) = 0.03; G+R needs ~860*1e-4 = 0.086.
  opts.cpu_budget_fraction = 0.05;
  SourceExecutor exec(q, S2SCosts(), opts);
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(1000));
  auto out = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->observation.proxies[2].pending, 0u);
  EXPECT_LE(out->observation.cpu_spent_seconds, 0.05 + 1e-9);
  EXPECT_EQ(ClassifyQueryState(out->observation, StepwiseConfig{}),
            QueryState::kCongested);
}

TEST(SourceExecutorTest, PendingRecordsCarryOverToNextEpoch) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutorOptions opts;
  opts.cpu_budget_fraction = 0.05;
  SourceExecutor exec(q, S2SCosts(), opts);
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(1000));
  auto first = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(first.ok());
  const uint64_t pending = first->observation.proxies[2].pending;
  ASSERT_GT(pending, 0u);
  // No new input: the backlog drains in the next epoch.
  auto second = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->observation.proxies[2].pending, pending);
  EXPECT_GT(second->observation.cpu_spent_seconds, 0.0);
}

TEST(SourceExecutorTest, ProfileModeProducesProfiles) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(1000));
  auto out = exec.RunEpoch(Seconds(1), true);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->observation.profiles_valid);
  ASSERT_EQ(out->observation.profiles.size(), 3u);
  // Relay of the filter is the 14% error drop.
  EXPECT_NEAR(out->observation.profiles[1].relay_records, 0.86, 0.05);
  // Full coverage => exact costs.
  EXPECT_NEAR(out->observation.profiles[0].cost_per_record, kCostW, 1e-12);
}

TEST(SourceExecutorTest, UndersampledProfileUnderestimatesCost) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutorOptions opts;
  opts.cpu_budget_fraction = 0.05;  // cannot process everything
  opts.profile_error_magnitude = 0.4;
  SourceExecutor exec(q, S2SCosts(), opts);
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(2000));
  auto out = exec.RunEpoch(Seconds(1), true);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->observation.profiles_valid);
  // G+R could not see all records: its estimate is biased low.
  EXPECT_LT(out->observation.profiles[2].cost_per_record, kCostG);
}

TEST(SourceExecutorTest, DrainedBytesAccounted) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({0, 0, 0});
  exec.Ingest(ProbeBatch(10));
  auto out = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(out.ok());
  uint64_t expected = 0;
  for (const DrainRecord& dr : out->to_sp) {
    expected += stream::WireSize(dr.record);
  }
  EXPECT_EQ(out->drained_bytes, expected);
}

TEST(SourceExecutorTest, SetCpuBudgetTakesEffect) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutorOptions opts;
  opts.cpu_budget_fraction = 0.05;
  SourceExecutor exec(q, S2SCosts(), opts);
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(1000));
  auto constrained = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(constrained.ok());
  EXPECT_GT(constrained->observation.proxies[2].pending, 0u);

  exec.SetCpuBudget(1.0);
  exec.Ingest(ProbeBatch(1000, Seconds(1)));
  auto relaxed = exec.RunEpoch(Seconds(2), false);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->observation.proxies[2].pending, 0u);
}

TEST(SourceExecutorTest, ObservationInputRecordsMatchesIngest) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.Ingest(ProbeBatch(123));
  auto out = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->observation.input_records, 123u);
}

}  // namespace
}  // namespace jarvis::core
