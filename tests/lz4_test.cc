#include "third_party/lz4/lz4_block.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "testing/test_util.h"

// Direct tests of the vendored LZ4 block codec, independent of the drain
// wire: the wire layer assumes Compress output always round-trips and that
// Decompress rejects every malformed stream with `false` instead of
// undefined behavior. The sanitizer CI legs are the real judge on the
// corruption sweeps here — a "return false" that read out of bounds first
// still fails the build.

namespace jarvis {
namespace {

using ::jarvis::testing::SeededTest;

std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& src) {
  std::vector<uint8_t> dst(lz4::CompressBound(src.size()));
  const size_t n =
      lz4::Compress(src.data(), src.size(), dst.data(), dst.size());
  EXPECT_GT(n, 0u) << "compress failed at CompressBound capacity";
  dst.resize(n);
  std::vector<uint8_t> back(src.size());
  EXPECT_TRUE(lz4::Decompress(dst.data(), dst.size(), back.data(),
                              back.size()));
  EXPECT_EQ(back, src);
  return dst;
}

class Lz4Test : public SeededTest {};

TEST_F(Lz4Test, EmptyInputRoundTrips) {
  // Valid (non-null) buffers with zero logical length: memcpy with a null
  // pointer is UB even at size 0, and the codec forwards its arguments.
  std::vector<uint8_t> scratch(1);
  std::vector<uint8_t> dst(lz4::CompressBound(0));
  const size_t n = lz4::Compress(scratch.data(), 0, dst.data(), dst.size());
  ASSERT_GT(n, 0u);
  EXPECT_TRUE(lz4::Decompress(dst.data(), n, scratch.data(), 0));
}

TEST_F(Lz4Test, TinyInputsAreAllLiterals) {
  // Below kMfLimit (12 bytes) no match can legally start, so every tiny
  // input must round-trip through the literals-only closing sequence.
  for (size_t len = 1; len <= 16; ++len) {
    std::vector<uint8_t> src(len);
    for (size_t i = 0; i < len; ++i) {
      src[i] = static_cast<uint8_t>(rng().NextU64());
    }
    RoundTrip(src);
  }
}

TEST_F(Lz4Test, RepetitiveInputCompresses) {
  const std::string unit = "GET /api/v1/users/12345/profile HTTP/1.1 ";
  std::vector<uint8_t> src;
  for (int i = 0; i < 64; ++i) {
    src.insert(src.end(), unit.begin(), unit.end());
  }
  const std::vector<uint8_t> packed = RoundTrip(src);
  EXPECT_LT(packed.size(), src.size() / 4)
      << "64x-repeated template should compress at least 4:1";
}

TEST_F(Lz4Test, LongRunsExerciseOverlappedCopies) {
  // offset < match length forces the decoder's overlap-correct byte copy;
  // a memcpy-based decoder corrupts this case.
  std::vector<uint8_t> src(4096, 0xAB);
  for (size_t i = 0; i < src.size(); i += 257) {
    src[i] = static_cast<uint8_t>(i >> 3);
  }
  RoundTrip(src);
}

TEST_F(Lz4Test, IncompressibleRandomRoundTrips) {
  for (const size_t len : {13u, 64u, 255u, 256u, 4096u, 70000u}) {
    std::vector<uint8_t> src(len);
    for (size_t i = 0; i < len; ++i) {
      src[i] = static_cast<uint8_t>(rng().NextU64());
    }
    const std::vector<uint8_t> packed = RoundTrip(src);
    EXPECT_LE(packed.size(), lz4::CompressBound(len));
  }
}

TEST_F(Lz4Test, MixedPayloadFuzzRoundTrips) {
  // Interleaved runs, random noise, and repeated templates at random
  // lengths: the shapes real columnar drain payloads take.
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<uint8_t> src;
    const size_t target = 1 + rng().NextBounded(20000);
    while (src.size() < target) {
      switch (rng().NextBounded(3)) {
        case 0: {  // literal noise
          const size_t n = 1 + rng().NextBounded(40);
          for (size_t i = 0; i < n; ++i) {
            src.push_back(static_cast<uint8_t>(rng().NextU64()));
          }
          break;
        }
        case 1: {  // byte run
          const size_t n = 4 + rng().NextBounded(300);
          src.insert(src.end(), n, static_cast<uint8_t>(rng().NextU64()));
          break;
        }
        default: {  // copy an earlier window (guaranteed match material)
          if (src.empty()) break;
          const size_t off = rng().NextBounded(src.size());
          const size_t n =
              1 + rng().NextBounded(std::min<size_t>(src.size() - off, 500));
          // Self-insert: vector growth may invalidate, so copy out first.
          const std::vector<uint8_t> win(src.begin() + off,
                                         src.begin() + off + n);
          src.insert(src.end(), win.begin(), win.end());
          break;
        }
      }
    }
    RoundTrip(src);
  }
}

TEST_F(Lz4Test, CompressReturnsZeroWhenCapacityTooSmall) {
  std::vector<uint8_t> src(512);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>(rng().NextU64());
  }
  std::vector<uint8_t> dst(lz4::CompressBound(src.size()));
  const size_t full =
      lz4::Compress(src.data(), src.size(), dst.data(), dst.size());
  ASSERT_GT(full, 0u);
  for (const size_t cap : {size_t{0}, size_t{1}, full / 2, full - 1}) {
    std::vector<uint8_t> small(cap == 0 ? 1 : cap);
    EXPECT_EQ(lz4::Compress(src.data(), src.size(), small.data(), cap), 0u)
        << "cap=" << cap << " must not fit a " << full << "-byte stream";
  }
}

TEST_F(Lz4Test, DecompressRejectsEveryTruncation) {
  const std::string unit = "edge-cache response_served_from=edge-cache ";
  std::vector<uint8_t> src;
  for (int i = 0; i < 32; ++i) {
    src.insert(src.end(), unit.begin(), unit.end());
    src.push_back(static_cast<uint8_t>(i));
  }
  std::vector<uint8_t> packed = RoundTrip(src);
  std::vector<uint8_t> out(src.size());
  for (size_t keep = 0; keep < packed.size(); ++keep) {
    EXPECT_FALSE(lz4::Decompress(packed.data(), keep, out.data(), out.size()))
        << "prefix of " << keep << "/" << packed.size()
        << " bytes must not decode to the full length";
  }
}

TEST_F(Lz4Test, DecompressRejectsWrongOutputLength) {
  std::vector<uint8_t> src(1000);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>(i * 31);
  }
  const std::vector<uint8_t> packed = RoundTrip(src);
  std::vector<uint8_t> big(src.size() + 1);
  EXPECT_FALSE(
      lz4::Decompress(packed.data(), packed.size(), big.data(), big.size()));
  if (!src.empty()) {
    std::vector<uint8_t> small(src.size() - 1);
    EXPECT_FALSE(lz4::Decompress(packed.data(), packed.size(), small.data(),
                                 small.size()));
  }
}

TEST_F(Lz4Test, DecompressSurvivesBitFlipsWithoutUB) {
  // Flipping any bit either still decodes (the flip landed in literal
  // bytes — LZ4 has no internal checksum; the wire's CRC catches that) or
  // returns false. Either way no out-of-bounds access: ASan/UBSan judge.
  const std::string unit = "host-17 rtt_us=250 src=10.0.0.1 dst=10.0.0.2 ";
  std::vector<uint8_t> src;
  for (int i = 0; i < 24; ++i) {
    src.insert(src.end(), unit.begin(), unit.end());
  }
  const std::vector<uint8_t> packed = RoundTrip(src);
  std::vector<uint8_t> out(src.size());
  for (size_t bit = 0; bit < packed.size() * 8; ++bit) {
    std::vector<uint8_t> mut = packed;
    mut[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    if (lz4::Decompress(mut.data(), mut.size(), out.data(), out.size())) {
      EXPECT_EQ(out.size(), src.size());
    }
  }
}

TEST_F(Lz4Test, DecompressRejectsRandomGarbage) {
  std::vector<uint8_t> out(4096);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> junk(1 + rng().NextBounded(512));
    for (size_t i = 0; i < junk.size(); ++i) {
      junk[i] = static_cast<uint8_t>(rng().NextU64());
    }
    // Must terminate with a verdict, no OOB either way.
    (void)lz4::Decompress(junk.data(), junk.size(), out.data(), out.size());
  }
}

TEST_F(Lz4Test, CompressionIsDeterministic) {
  std::vector<uint8_t> src;
  for (int i = 0; i < 500; ++i) {
    const std::string line =
        "op=" + std::to_string(i % 7) + " user=" + std::to_string(i) + "\n";
    src.insert(src.end(), line.begin(), line.end());
  }
  const std::vector<uint8_t> a = RoundTrip(src);
  const std::vector<uint8_t> b = RoundTrip(src);
  EXPECT_EQ(a, b) << "same input must produce the same stream bytes "
                     "(bit-identical retransmit/replay relies on this)";
}

}  // namespace
}  // namespace jarvis
