#ifndef JARVIS_SER_CODEC_H_
#define JARVIS_SER_CODEC_H_

#include <cstdint>

#include "ser/buffer.h"

namespace jarvis::ser {

/// Streaming delta codec shared by the schema-elided batch format
/// (stream/record.cc), the columnar drain format (stream/columnar.cc), and
/// the scalar reference kernels (stream/kernels.cc). Deltas are computed in
/// uint64_t so wraparound is well-defined and the decoder's addition inverts
/// the encoder exactly; the delta is then zigzag-varint encoded on the wire.
struct DeltaEncoder {
  uint64_t prev = 0;

  /// Returns the signed delta to the previous value (the varint payload
  /// before zigzag) and advances the baseline.
  int64_t Delta(int64_t v) {
    const uint64_t u = static_cast<uint64_t>(v);
    const int64_t d = static_cast<int64_t>(u - prev);
    prev = u;
    return d;
  }

  /// Same step, already zigzag-transformed (what block encoders emit).
  uint64_t ZigZagDelta(int64_t v) { return ZigZagEncode(Delta(v)); }
};

/// Inverse of DeltaEncoder: feeds decoded deltas back into the running sum.
struct DeltaDecoder {
  uint64_t prev = 0;

  /// Applies one decoded (post-zigzag) delta and returns the value.
  int64_t Next(int64_t delta) {
    prev += static_cast<uint64_t>(delta);
    return static_cast<int64_t>(prev);
  }
};

}  // namespace jarvis::ser

#endif  // JARVIS_SER_CODEC_H_
