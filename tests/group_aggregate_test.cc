#include <gtest/gtest.h>

#include <map>

#include "stream/group_aggregate.h"
#include "testing/test_util.h"

namespace jarvis::stream {
namespace {

using jarvis::testing::BatchNear;
using jarvis::testing::MakeWindowedRecord;

Schema InSchema() { return jarvis::testing::KvSchema("key", "val"); }

std::vector<AggSpec> AllAggs() {
  return {{AggKind::kCount, 0, "cnt"},
          {AggKind::kSum, 1, "sum"},
          {AggKind::kAvg, 1, "avg"},
          {AggKind::kMin, 1, "min"},
          {AggKind::kMax, 1, "max"}};
}


TEST(GroupAggregateTest, OutputSchemaLayout) {
  Schema out = GroupAggregateOp::MakeOutputSchema(InSchema(), {0}, AllAggs());
  ASSERT_EQ(out.num_fields(), 6u);
  EXPECT_EQ(out.field(0).name, "key");
  EXPECT_EQ(out.field(1).name, "cnt");
  EXPECT_EQ(out.field(1).type, ValueType::kInt64);
  EXPECT_EQ(out.field(2).type, ValueType::kDouble);
}

TEST(GroupAggregateTest, BasicAggregation) {
  GroupAggregateOp op("g", InSchema(), {0}, AllAggs(), Seconds(10),
                      /*emit_partials=*/false);
  RecordBatch out;
  ASSERT_TRUE(op.Process(MakeWindowedRecord(1, 0, 1, 2.0), &out).ok());
  ASSERT_TRUE(op.Process(MakeWindowedRecord(2, 0, 1, 4.0), &out).ok());
  ASSERT_TRUE(op.Process(MakeWindowedRecord(3, 0, 2, 10.0), &out).ok());
  EXPECT_TRUE(out.empty());  // emission only on window close
  EXPECT_EQ(op.open_windows(), 1u);

  ASSERT_TRUE(op.OnWatermark(Seconds(10), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(op.open_windows(), 0u);

  // Groups are emitted in encoded-key order (key 1, then key 2).
  const Record& g1 = out[0];
  EXPECT_EQ(g1.i64(0), 1);
  EXPECT_EQ(g1.i64(1), 2);            // count
  EXPECT_DOUBLE_EQ(g1.f64(2), 6.0);   // sum
  EXPECT_DOUBLE_EQ(g1.f64(3), 3.0);   // avg
  EXPECT_DOUBLE_EQ(g1.f64(4), 2.0);   // min
  EXPECT_DOUBLE_EQ(g1.f64(5), 4.0);   // max

  const Record& g2 = out[1];
  EXPECT_EQ(g2.i64(0), 2);
  EXPECT_EQ(g2.i64(1), 1);
  EXPECT_DOUBLE_EQ(g2.f64(3), 10.0);
}

TEST(GroupAggregateTest, EmissionCarriesWindowTimes) {
  GroupAggregateOp op("g", InSchema(), {0}, AllAggs(), Seconds(10), false);
  RecordBatch out;
  ASSERT_TRUE(op.Process(MakeWindowedRecord(Seconds(12), Seconds(10), 1, 1.0), &out).ok());
  ASSERT_TRUE(op.OnWatermark(Seconds(20), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].window_start, Seconds(10));
  EXPECT_EQ(out[0].event_time, Seconds(20));
}

TEST(GroupAggregateTest, WatermarkOnlyClosesDueWindows) {
  GroupAggregateOp op("g", InSchema(), {0}, AllAggs(), Seconds(10), false);
  RecordBatch out;
  ASSERT_TRUE(op.Process(MakeWindowedRecord(Seconds(5), 0, 1, 1.0), &out).ok());
  ASSERT_TRUE(op.Process(MakeWindowedRecord(Seconds(15), Seconds(10), 1, 1.0), &out).ok());
  ASSERT_TRUE(op.OnWatermark(Seconds(10), &out).ok());
  EXPECT_EQ(out.size(), 1u);  // only window [0,10) closed
  EXPECT_EQ(op.open_windows(), 1u);
  ASSERT_TRUE(op.OnWatermark(Seconds(20), &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST(GroupAggregateTest, UnwindowedInputIsError) {
  GroupAggregateOp op("g", InSchema(), {0}, AllAggs(), Seconds(10), false);
  Record r = MakeWindowedRecord(1, -1, 1, 1.0);
  r.window_start = -1;
  RecordBatch out;
  EXPECT_EQ(op.Process(std::move(r), &out).code(),
            StatusCode::kFailedPrecondition);
}

TEST(GroupAggregateTest, PartialModeEmitsPartialRecords) {
  GroupAggregateOp op("g", InSchema(), {0}, AllAggs(), Seconds(10),
                      /*emit_partials=*/true);
  RecordBatch out;
  ASSERT_TRUE(op.Process(MakeWindowedRecord(1, 0, 1, 2.0), &out).ok());
  ASSERT_TRUE(op.OnWatermark(Seconds(10), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, RecordKind::kPartial);
  // keys + 4 accumulator slots per agg.
  EXPECT_EQ(out[0].fields.size(), 1u + 4u * 5u);
}

using GroupAggregateSeededTest = jarvis::testing::SeededTest;

TEST_F(GroupAggregateSeededTest, PartialMergeEqualsDirectAggregation) {
  // Split a stream between two "source" operators in partial mode; merging
  // their exports on a third operator must equal aggregating everything
  // directly. This is the paper's losslessness claim in miniature.
  RecordBatch all;
  for (int i = 0; i < 500; ++i) {
    all.push_back(MakeWindowedRecord(i, 0,
                                     static_cast<int64_t>(rng().NextBounded(7)),
                                     rng().NextGaussian() * 10));
  }

  GroupAggregateOp direct("d", InSchema(), {0}, AllAggs(), Seconds(10), false);
  GroupAggregateOp src_a("a", InSchema(), {0}, AllAggs(), Seconds(10), true);
  GroupAggregateOp src_b("b", InSchema(), {0}, AllAggs(), Seconds(10), true);
  GroupAggregateOp merge("m", InSchema(), {0}, AllAggs(), Seconds(10), false);

  RecordBatch sink;
  for (size_t i = 0; i < all.size(); ++i) {
    Record copy = all[i];
    ASSERT_TRUE(direct.Process(std::move(copy), &sink).ok());
    Record split = all[i];
    ASSERT_TRUE((i % 2 ? src_a : src_b).Process(std::move(split), &sink).ok());
  }
  ASSERT_TRUE(sink.empty());

  RecordBatch partials;
  ASSERT_TRUE(src_a.OnWatermark(Seconds(10), &partials).ok());
  ASSERT_TRUE(src_b.OnWatermark(Seconds(10), &partials).ok());
  for (Record& p : partials) {
    ASSERT_EQ(p.kind, RecordKind::kPartial);
    ASSERT_TRUE(merge.Process(std::move(p), &sink).ok());
  }

  RecordBatch direct_out, merged_out;
  ASSERT_TRUE(direct.OnWatermark(Seconds(10), &direct_out).ok());
  ASSERT_TRUE(merge.OnWatermark(Seconds(10), &merged_out).ok());
  EXPECT_TRUE(BatchNear(merged_out, direct_out, 1e-9));
}

TEST(GroupAggregateTest, PartialArityMismatchRejected) {
  GroupAggregateOp op("g", InSchema(), {0}, AllAggs(), Seconds(10), false);
  Record bad;
  bad.kind = RecordKind::kPartial;
  bad.window_start = 0;
  bad.fields = {Value(int64_t{1})};  // too few accumulator fields
  RecordBatch out;
  EXPECT_EQ(op.Process(std::move(bad), &out).code(),
            StatusCode::kSerializationError);
}

TEST(GroupAggregateTest, ExportPartialStateDrainsEverything) {
  GroupAggregateOp op("g", InSchema(), {0}, AllAggs(), Seconds(10), false);
  RecordBatch out;
  ASSERT_TRUE(op.Process(MakeWindowedRecord(1, 0, 1, 1.0), &out).ok());
  ASSERT_TRUE(op.Process(MakeWindowedRecord(11, Seconds(10), 2, 2.0), &out).ok());
  RecordBatch exported;
  ASSERT_TRUE(op.ExportPartialState(&exported).ok());
  EXPECT_EQ(exported.size(), 2u);
  for (const Record& r : exported) {
    EXPECT_EQ(r.kind, RecordKind::kPartial);
  }
  EXPECT_EQ(op.open_windows(), 0u);
}

TEST(GroupAggregateTest, MultiKeyGrouping) {
  Schema schema = Schema::Of({{"a", ValueType::kInt64},
                              {"b", ValueType::kString},
                              {"v", ValueType::kDouble}});
  GroupAggregateOp op("g", schema, {0, 1}, {{AggKind::kCount, 0, "cnt"}},
                      Seconds(10), false);
  RecordBatch out;
  auto make = [](int64_t a, const char* b) {
    Record r;
    r.event_time = 1;
    r.window_start = 0;
    r.fields = {Value(a), Value(std::string(b)), Value(1.0)};
    return r;
  };
  ASSERT_TRUE(op.Process(make(1, "x"), &out).ok());
  ASSERT_TRUE(op.Process(make(1, "y"), &out).ok());
  ASSERT_TRUE(op.Process(make(1, "x"), &out).ok());
  ASSERT_TRUE(op.OnWatermark(Seconds(10), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  std::map<std::string, int64_t> counts;
  for (const Record& r : out) counts[r.str(1)] = r.i64(2);
  EXPECT_EQ(counts["x"], 2);
  EXPECT_EQ(counts["y"], 1);
}

TEST(GroupAggregateTest, AggKindNames) {
  EXPECT_EQ(AggKindToString(AggKind::kCount), "count");
  EXPECT_EQ(AggKindToString(AggKind::kSum), "sum");
  EXPECT_EQ(AggKindToString(AggKind::kAvg), "avg");
  EXPECT_EQ(AggKindToString(AggKind::kMin), "min");
  EXPECT_EQ(AggKindToString(AggKind::kMax), "max");
}

// Property: for any interleaving split into k partial operators, merged
// results equal direct aggregation.
class PartialMergePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PartialMergePropertyTest, AnySplitIsLossless) {
  const int k = GetParam();
  Rng rng(1000 + k);
  std::vector<AggSpec> aggs = AllAggs();

  GroupAggregateOp direct("d", InSchema(), {0}, aggs, Seconds(10), false);
  std::vector<std::unique_ptr<GroupAggregateOp>> sources;
  for (int i = 0; i < k; ++i) {
    // std::string("s").append(...) sidesteps a gcc-12 -Wrestrict false
    // positive on operator+(const char*, std::string&&).
    sources.push_back(std::make_unique<GroupAggregateOp>(
        std::string("s").append(std::to_string(i)), InSchema(),
        std::vector<size_t>{0}, aggs, Seconds(10), true));
  }
  GroupAggregateOp merge("m", InSchema(), {0}, aggs, Seconds(10), false);

  RecordBatch sink;
  for (int i = 0; i < 300; ++i) {
    const Micros window = Seconds(10) * static_cast<Micros>(rng.NextBounded(3));
    Record r = MakeWindowedRecord(window + 1, window, static_cast<int64_t>(rng.NextBounded(5)),
                   rng.NextGaussian());
    Record copy = r;
    ASSERT_TRUE(direct.Process(std::move(copy), &sink).ok());
    ASSERT_TRUE(
        sources[rng.NextBounded(k)]->Process(std::move(r), &sink).ok());
  }
  RecordBatch partials;
  for (auto& s : sources) {
    ASSERT_TRUE(s->OnWatermark(Seconds(30), &partials).ok());
  }
  for (Record& p : partials) {
    ASSERT_TRUE(merge.Process(std::move(p), &sink).ok());
  }
  RecordBatch direct_out, merged_out;
  ASSERT_TRUE(direct.OnWatermark(Seconds(30), &direct_out).ok());
  ASSERT_TRUE(merge.OnWatermark(Seconds(30), &merged_out).ok());
  EXPECT_TRUE(BatchNear(merged_out, direct_out, 1e-9)) << "split k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Splits, PartialMergePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace jarvis::stream
