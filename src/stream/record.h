#ifndef JARVIS_STREAM_RECORD_H_
#define JARVIS_STREAM_RECORD_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "ser/buffer.h"

namespace jarvis::ser {
class ChunkWriter;
}  // namespace jarvis::ser

namespace jarvis::stream {

/// Field value: monitoring streams carry numeric metrics (Pingmesh) and
/// unstructured text (LogAnalytics).
using Value = std::variant<int64_t, double, std::string>;

enum class ValueType : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

inline ValueType TypeOf(const Value& v) {
  return static_cast<ValueType>(v.index());
}

/// Renders a value for debugging and golden tests.
std::string ValueToString(const Value& v);

/// Record kinds on the wire. Stateful operators drain accumulated *partial
/// state* (not raw records) so the stream processor can merge it losslessly
/// (Section V, "Accurate query processing").
enum class RecordKind : uint8_t { kData = 0, kPartial = 1 };

/// A single stream element. `window_start` is assigned by the Window operator
/// (-1 before assignment); `kind` distinguishes raw data from exported
/// partial aggregation state.
struct Record {
  Micros event_time = 0;
  Micros window_start = -1;
  RecordKind kind = RecordKind::kData;
  std::vector<Value> fields;

  Record() = default;
  Record(Micros t, std::vector<Value> f)
      : event_time(t), fields(std::move(f)) {}

  int64_t i64(size_t i) const { return std::get<int64_t>(fields[i]); }
  double f64(size_t i) const { return std::get<double>(fields[i]); }
  const std::string& str(size_t i) const {
    return std::get<std::string>(fields[i]);
  }

  /// Numeric view of field i (int64 fields widen to double).
  double AsDouble(size_t i) const;

  bool operator==(const Record& other) const = default;
};

using RecordBatch = std::vector<Record>;

/// Grows `out` so `extra` more elements fit, preserving vector-style
/// geometric growth. A bare reserve(size()+extra) per appended chunk caps
/// capacity at the exact requested size, which turns chunked appends
/// quadratic; this helper is what every batch hot loop must use instead.
/// Templated so drain-record vectors share the one definition.
template <typename T>
inline void GrowForAppend(std::vector<T>* out, size_t extra) {
  const size_t need = out->size() + extra;
  if (need > out->capacity()) {
    out->reserve(std::max(need, out->capacity() * 2));
  }
}

/// Moves every record of `batch` onto the end of `out`. When `out` is empty
/// and has less capacity than the batch, the buffers are swapped (O(1))
/// instead of moved element-wise; swapping rather than move-assigning keeps
/// the donor's buffer alive for reuse by the caller's scratch.
inline void MoveAppend(RecordBatch&& batch, RecordBatch* out) {
  if (out->empty() && out->capacity() < batch.size()) {
    std::swap(*out, batch);
    return;
  }
  GrowForAppend(out, batch.size());
  for (Record& rec : batch) out->push_back(std::move(rec));
}

/// Named, typed columns. Operators validate inputs against schemas at plan
/// compile time, not per record.
class Schema {
 public:
  struct Field {
    std::string name;
    ValueType type;
    bool operator==(const Field&) const = default;
  };

  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static Schema Of(std::initializer_list<Field> fields) {
    return Schema(std::vector<Field>(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field or kNotFound status.
  Result<size_t> IndexOf(std::string_view name) const;

  /// Returns a schema with `extra` appended.
  Schema Append(Field extra) const;

  /// Returns a schema keeping only the given indices, in order.
  Schema Select(const std::vector<size_t>& indices) const;

  std::string ToString() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Field> fields_;
};

/// Exact wire size of a record in bytes without serializing it (varint widths
/// are computed, not estimated): WireSize(r) == SerializeRecord(r) output
/// size, always. Used for drain-byte accounting on hot paths so reported
/// network bytes never drift from what serialization would actually ship.
size_t WireSize(const Record& rec);

/// Serializes a record to the drain-path wire format.
void SerializeRecord(const Record& rec, ser::BufferWriter* out);

/// Decodes a record previously written by SerializeRecord.
Status DeserializeRecord(ser::BufferReader* in, Record* out);

// ---------------------------------------------------------------------------
// Schema-elided batch wire format
// ---------------------------------------------------------------------------
// The record-at-a-time format repeats a type tag per field per record even
// though the schema is fixed at query-compile time. The batch format writes
// the schema's type tags once per batch and the payload as packed columns
// (zigzag varints for int64, 8-byte LE doubles, length-prefixed strings), so
// the per-record overhead drops to one flag byte plus the two time varints.
// Records that do not match the schema — kPartial accumulator rows have a
// different arity — are flagged and serialized with inline tags after the
// columns, so any batch round-trips losslessly.
//
// Version 2 wraps the v1 body in the same integrity header as the columnar
// format — [u8 version=2][u32 payload_len][u32 FrameChecksum(payload)] — so
// every drain wire frame is corruption-checked before decode. Version-1
// frames (no header) still decode.

inline constexpr uint8_t kBatchFormatVersion = 2;
inline constexpr uint8_t kBatchFormatVersionLegacy = 1;

/// True when the record's fields match the schema's arity and types exactly
/// (such records serialize tag-free in the columnar section). Inline: called
/// once per record on the drain serialization path.
inline bool ConformsToSchema(const Record& rec, const Schema& schema) {
  if (rec.fields.size() != schema.num_fields()) return false;
  for (size_t j = 0; j < rec.fields.size(); ++j) {
    if (TypeOf(rec.fields[j]) != schema.field(j).type) return false;
  }
  return true;
}

/// Serializes a whole batch in the schema-elided format and returns the
/// number of bytes written, so callers get network-byte accounting from the
/// serialization pass itself instead of a separate WireSize walk.
size_t SerializeBatch(const RecordBatch& batch, const Schema& schema,
                      ser::BufferWriter* out);

/// Decodes a batch previously written by SerializeBatch. The format is
/// self-describing (type tags ride in the batch header), so no schema is
/// needed on the read side.
Status DeserializeBatch(ser::BufferReader* in, RecordBatch* out);

/// Writes one value with its inline type tag (the record-format payload
/// encoding). Shared by the batch and columnar formats' fallback sections so
/// the three wire formats agree on tagged-value bytes.
void WriteTaggedValue(const Value& v, ser::ChunkWriter* w);

/// Decodes one inline-tagged value written by WriteTaggedValue (or the
/// record format's field encoding).
Status ReadTaggedValue(ser::BufferReader* in, Value* out);

}  // namespace jarvis::stream

#endif  // JARVIS_STREAM_RECORD_H_
