#include "core/overload.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <iterator>
#include <utility>

#include "common/env.h"
#include "common/rng.h"

namespace jarvis::core {

namespace {

constexpr std::string_view kTrafficKindNames[] = {"burst", "ramp", "skew",
                                                  "leave"};

/// Multipliers beyond this are implausible and would only blow up memory;
/// the shaper clamps rather than erroring so ramp endpoints stay scriptable.
constexpr double kMaxRateMultiplier = 64.0;

Result<TrafficKind> ParseTrafficKind(std::string_view s) {
  for (size_t i = 0; i < std::size(kTrafficKindNames); ++i) {
    if (s == kTrafficKindNames[i]) return static_cast<TrafficKind>(i);
  }
  return Status::InvalidArgument("unknown traffic kind: " + std::string(s));
}

Result<uint64_t> ParseTrafficU64(std::string_view s) {
  uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("bad number in traffic spec: " +
                                   std::string(s));
  }
  return v;
}

uint64_t DefaultFactor(TrafficKind kind) {
  switch (kind) {
    case TrafficKind::kBurst:
    case TrafficKind::kRamp:
      return 4;
    case TrafficKind::kSkew:
      return 50;
    case TrafficKind::kLeave:
      return 1;
  }
  return 1;
}

/// Deterministic per-record coin in [0, 1): a pure function of the plan
/// seed and the (source, epoch, record index, salt) coordinates, so shaped
/// output is identical across thread counts and on crash replay.
double Hash01(uint64_t seed, size_t source, int64_t epoch, uint64_t index,
              uint64_t salt) {
  const uint64_t coord = (static_cast<uint64_t>(source) << 40) ^
                         (static_cast<uint64_t>(epoch) << 8) ^ salt;
  const uint64_t h = SplitMix64(seed ^ SplitMix64(coord) ^
                                index * 0x9e3779b97f4a7c15ULL);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr uint64_t kReplicateSalt = 0x5eed;
constexpr uint64_t kSkewSalt = 0xabcd;

bool Active(const TrafficEvent& ev, size_t source, int64_t epoch) {
  return ev.source == source && epoch >= ev.epoch &&
         epoch < ev.epoch + ev.count;
}

}  // namespace

std::string_view TrafficKindToString(TrafficKind k) {
  return kTrafficKindNames[static_cast<size_t>(k)];
}

Result<TrafficPlan> TrafficPlan::Parse(std::string_view spec) {
  TrafficPlan plan;
  while (!spec.empty()) {
    const size_t semi = spec.find(';');
    std::string_view tok = spec.substr(0, semi);
    spec = (semi == std::string_view::npos) ? std::string_view()
                                            : spec.substr(semi + 1);
    if (tok.empty()) continue;
    if (tok.substr(0, 5) == "seed=") {
      JARVIS_ASSIGN_OR_RETURN(plan.seed, ParseTrafficU64(tok.substr(5)));
      continue;
    }
    // kind@epoch:source[#field][xcount][*factor]
    const size_t at = tok.find('@');
    if (at == std::string_view::npos) {
      return Status::InvalidArgument("traffic event missing '@': " +
                                     std::string(tok));
    }
    TrafficEvent ev;
    JARVIS_ASSIGN_OR_RETURN(ev.kind, ParseTrafficKind(tok.substr(0, at)));
    std::string_view rest = tok.substr(at + 1);
    const size_t colon = rest.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("traffic event missing ':': " +
                                     std::string(tok));
    }
    JARVIS_ASSIGN_OR_RETURN(uint64_t epoch,
                            ParseTrafficU64(rest.substr(0, colon)));
    ev.epoch = static_cast<int64_t>(epoch);
    rest = rest.substr(colon + 1);
    // Optional suffixes, innermost-last: #field, then xcount, then *factor.
    const size_t star = rest.find('*');
    std::string_view factor_part;
    if (star != std::string_view::npos) {
      factor_part = rest.substr(star + 1);
      rest = rest.substr(0, star);
      if (factor_part.empty()) {
        return Status::InvalidArgument(
            "traffic event has '*' but no factor: " + std::string(tok));
      }
    }
    const size_t x = rest.find('x');
    std::string_view count_part;
    if (x != std::string_view::npos) {
      count_part = rest.substr(x + 1);
      rest = rest.substr(0, x);
      if (count_part.empty()) {
        return Status::InvalidArgument("traffic event has 'x' but no count: " +
                                       std::string(tok));
      }
    }
    const size_t hash = rest.find('#');
    std::string_view field_part;
    if (hash != std::string_view::npos) {
      field_part = rest.substr(hash + 1);
      rest = rest.substr(0, hash);
      if (field_part.empty()) {
        return Status::InvalidArgument("traffic event has '#' but no field: " +
                                       std::string(tok));
      }
    }
    JARVIS_ASSIGN_OR_RETURN(uint64_t source, ParseTrafficU64(rest));
    ev.source = static_cast<size_t>(source);
    if (!field_part.empty()) {
      JARVIS_ASSIGN_OR_RETURN(uint64_t field, ParseTrafficU64(field_part));
      ev.field = static_cast<size_t>(field);
    }
    if (!count_part.empty()) {
      JARVIS_ASSIGN_OR_RETURN(uint64_t count, ParseTrafficU64(count_part));
      if (count == 0) {
        return Status::InvalidArgument("traffic count must be positive");
      }
      ev.count = static_cast<int>(count);
    }
    if (!factor_part.empty()) {
      JARVIS_ASSIGN_OR_RETURN(ev.factor, ParseTrafficU64(factor_part));
      if (ev.factor == 0) {
        return Status::InvalidArgument("traffic factor must be positive");
      }
    } else {
      ev.factor = DefaultFactor(ev.kind);
    }
    plan.events.push_back(ev);
  }
  return plan;
}

std::string TrafficPlan::ToString() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const TrafficEvent& ev : events) {
    out += ';';
    out += TrafficKindToString(ev.kind);
    out += '@' + std::to_string(ev.epoch) + ':' + std::to_string(ev.source);
    if (ev.field != 0) out += '#' + std::to_string(ev.field);
    if (ev.count != 1) out += 'x' + std::to_string(ev.count);
    if (ev.factor != DefaultFactor(ev.kind)) {
      out += '*' + std::to_string(ev.factor);
    }
  }
  return out;
}

Result<std::unique_ptr<TrafficShaper>> TrafficShaper::FromEnv() {
  std::optional<std::string> spec = env::Raw("JARVIS_TRAFFIC");
  if (!spec) return std::unique_ptr<TrafficShaper>();
  Result<TrafficPlan> plan = TrafficPlan::Parse(*spec);
  if (!plan.ok()) {
    return Status::InvalidArgument("JARVIS_TRAFFIC: " +
                                   plan.status().message());
  }
  return std::make_unique<TrafficShaper>(*std::move(plan));
}

double TrafficShaper::RateMultiplier(size_t source, int64_t epoch) const {
  double m = 1.0;
  for (const TrafficEvent& ev : plan_.events) {
    if (!Active(ev, source, epoch)) continue;
    switch (ev.kind) {
      case TrafficKind::kBurst:
        m *= static_cast<double>(ev.factor);
        break;
      case TrafficKind::kRamp: {
        // Linear climb toward the peak: offset k of a count-epoch ramp runs
        // at 1 + (factor-1) * (k+1)/count, hitting factor on the last epoch.
        const double k = static_cast<double>(epoch - ev.epoch);
        m *= 1.0 + (static_cast<double>(ev.factor) - 1.0) * (k + 1.0) /
                       static_cast<double>(ev.count);
        break;
      }
      case TrafficKind::kSkew:
      case TrafficKind::kLeave:
        break;
    }
  }
  return std::min(m, kMaxRateMultiplier);
}

bool TrafficShaper::Suppressed(size_t source, int64_t epoch) const {
  for (const TrafficEvent& ev : plan_.events) {
    if (ev.kind == TrafficKind::kLeave && Active(ev, source, epoch)) {
      return true;
    }
  }
  return false;
}

void TrafficShaper::Shape(size_t source, int64_t epoch,
                          stream::RecordBatch* batch) const {
  if (Suppressed(source, epoch)) {
    batch->clear();
    return;
  }
  const double m = RateMultiplier(source, epoch);
  if (m > 1.0 && !batch->empty()) {
    // Replicate in place, copies adjacent to their original so event-time
    // order is preserved. A fractional multiplier is realized by an
    // error-diffusing per-record coin, so the expected rate is exact and
    // the realized count is a pure function of (seed, source, epoch).
    const uint64_t base = static_cast<uint64_t>(m);
    const double frac = m - static_cast<double>(base);
    stream::RecordBatch shaped;
    shaped.reserve(static_cast<size_t>(
        static_cast<double>(batch->size()) * m + 1.0));
    for (size_t i = 0; i < batch->size(); ++i) {
      uint64_t copies = base;
      if (Hash01(plan_.seed, source, epoch, i, kReplicateSalt) < frac) {
        ++copies;
      }
      for (uint64_t c = 0; c + 1 < copies; ++c) {
        shaped.push_back((*batch)[i]);
      }
      shaped.push_back(std::move((*batch)[i]));
    }
    *batch = std::move(shaped);
  }
  for (const TrafficEvent& ev : plan_.events) {
    if (ev.kind != TrafficKind::kSkew || !Active(ev, source, epoch)) continue;
    // Rewrite `factor`% of int64 keys in field #field to one hot value:
    // a key-popularity flip the planner must chase, never a timestamp edit.
    const double frac =
        std::min(1.0, static_cast<double>(ev.factor) / 100.0);
    const int64_t hot = static_cast<int64_t>(
        SplitMix64(plan_.seed ^ kSkewSalt ^ (ev.field * 0x9e3779b9ULL)) &
        0x7fffffffULL);
    for (size_t i = 0; i < batch->size(); ++i) {
      if (Hash01(plan_.seed, source, epoch, i, kSkewSalt ^ ev.field) >= frac) {
        continue;
      }
      stream::Record& rec = (*batch)[i];
      if (ev.field < rec.fields.size() &&
          std::holds_alternative<int64_t>(rec.fields[ev.field])) {
        rec.fields[ev.field] = hot;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// OverloadController
// ---------------------------------------------------------------------------

std::string_view OverloadLevelToString(OverloadLevel level) {
  switch (level) {
    case OverloadLevel::kSteady:
      return "steady";
    case OverloadLevel::kThrottled:
      return "throttled";
    case OverloadLevel::kShedding:
      return "shedding";
    case OverloadLevel::kQuarantined:
      return "quarantined";
  }
  return "?";
}

OverloadController::OverloadController(OverloadOptions opts, size_t n)
    : opts_(opts), src_(n) {}

void OverloadController::AddSource() { src_.emplace_back(); }

void OverloadController::NoteSpInflow(uint64_t records) {
  if (opts_.sp_capacity_records == 0) return;
  // Modeled consume queue: whatever this epoch's inflow exceeds capacity by
  // carries into the next epoch as backlog.
  const uint64_t load = sp_backlog_ + records;
  sp_backlog_ = load > opts_.sp_capacity_records
                    ? load - opts_.sp_capacity_records
                    : 0;
  if (sp_backlog_ > stats_.max_sp_backlog) {
    stats_.max_sp_backlog = sp_backlog_;
  }
}

IngressDirective OverloadController::DirectiveFor(const SourceState& st,
                                                  double cap) const {
  IngressDirective d;
  d.level = st.level;
  if (st.level == OverloadLevel::kSteady || cap <= 0.0) return d;
  const auto records = [](double x) {
    return static_cast<uint64_t>(std::ceil(std::max(x, 0.0)));
  };
  switch (st.level) {
    case OverloadLevel::kSteady:
      break;
    case OverloadLevel::kThrottled:
      d.admit_cap = records(cap * opts_.catchup);
      d.defer_cap = records(cap * opts_.defer_epochs);
      d.pressure = opts_.pressure_gain;
      break;
    case OverloadLevel::kShedding:
      d.admit_cap = records(cap * opts_.catchup);
      d.defer_cap = records(cap * opts_.defer_epochs);
      d.drain_cap = std::max<uint64_t>(records(cap * opts_.shed_headroom), 1);
      d.pressure = 2.0 * opts_.pressure_gain;
      break;
    case OverloadLevel::kQuarantined:
      // Ingress blackout: nothing admitted, nothing deferred — everything
      // offered sheds, so the watermark keeps advancing while the source
      // sits out the storm.
      d.admit_cap = 0;
      d.defer_cap = 0;
      d.pressure = 4.0 * opts_.pressure_gain;
      break;
  }
  return d;
}

IngressDirective OverloadController::Tick(size_t source,
                                          const PressureSample& sample) {
  escalated_last_tick_ = false;
  SourceState& st = src_[source];
  const double offered = static_cast<double>(sample.offered);
  if (opts_.source_capacity_records == 0 && st.baseline <= 0.0 &&
      offered > 0.0) {
    st.baseline = offered;
  }
  const double cap = opts_.source_capacity_records > 0
                         ? static_cast<double>(opts_.source_capacity_records)
                         : st.baseline;
  double score = cap > 0.0 ? offered / cap : 0.0;
  if (opts_.sp_capacity_records > 0 && sp_backlog_ > 0) {
    // SP-side pressure in epochs-of-capacity above 1.0; shared by every
    // source, so SP overload degrades the whole edge, not one scapegoat.
    const double sp_score =
        1.0 + static_cast<double>(sp_backlog_) /
                  static_cast<double>(opts_.sp_capacity_records);
    score = std::max(score, sp_score);
  }
  st.score = score;
  // Learn capacity only from calm epochs, so a burst never inflates the
  // baseline it is judged against.
  if (opts_.source_capacity_records == 0 && offered > 0.0 &&
      score < opts_.throttle_at) {
    st.baseline = 0.7 * st.baseline + 0.3 * offered;
  }
  const OverloadLevel target =
      score >= opts_.quarantine_at  ? OverloadLevel::kQuarantined
      : score >= opts_.shed_at      ? OverloadLevel::kShedding
      : score >= opts_.throttle_at  ? OverloadLevel::kThrottled
                                    : OverloadLevel::kSteady;
  if (target > st.level) {
    // Escalate one rung per epoch: throttle (and let the re-plan move
    // operators toward the source) before shedding, shed before blackout.
    st.level = static_cast<OverloadLevel>(static_cast<uint8_t>(st.level) + 1);
    st.calm_streak = 0;
    ++stats_.escalations;
    escalated_last_tick_ = true;
  } else if (score < opts_.calm_below) {
    if (++st.calm_streak >= opts_.calm_epochs &&
        st.level > OverloadLevel::kSteady) {
      st.level =
          static_cast<OverloadLevel>(static_cast<uint8_t>(st.level) - 1);
      st.calm_streak = 0;
      ++stats_.deescalations;
    }
  } else {
    st.calm_streak = 0;
  }
  if (sample.deferred > stats_.max_deferred) {
    stats_.max_deferred = sample.deferred;
  }
  switch (st.level) {
    case OverloadLevel::kSteady:
      break;
    case OverloadLevel::kThrottled:
      ++stats_.throttled_epochs;
      break;
    case OverloadLevel::kShedding:
      ++stats_.shedding_epochs;
      break;
    case OverloadLevel::kQuarantined:
      ++stats_.quarantined_epochs;
      break;
  }
  return DirectiveFor(st, cap);
}

// ---------------------------------------------------------------------------
// Drain shedding
// ---------------------------------------------------------------------------

uint64_t ShedDrainChunks(uint64_t drain_cap, SourceEpochOutput* out,
                         uint64_t* chunks_shed) {
  uint64_t total = out->DrainedRecords();
  if (total <= drain_cap) return 0;
  // Candidates: pure-data columnar chunks only. Row-lane chunks can carry
  // kPartial operator state and watermark-bearing emissions; dropping those
  // would corrupt downstream state, not just lose samples.
  std::vector<size_t> candidates;
  candidates.reserve(out->to_sp.size());
  for (size_t i = 0; i < out->to_sp.size(); ++i) {
    const DrainChunk& c = out->to_sp[i];
    if (c.rows.empty() && c.columns.num_rows() > 0) candidates.push_back(i);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](size_t a, size_t b) {
                     return out->to_sp[a].sp_entry_op <
                            out->to_sp[b].sp_entry_op;
                   });
  std::vector<uint8_t> drop(out->to_sp.size(), 0);
  uint64_t shed = 0;
  for (size_t i : candidates) {
    if (total <= drain_cap) break;
    const DrainChunk& c = out->to_sp[i];
    const uint64_t sz = c.size();
    const uint64_t bytes = c.columns.RowWireBytes();
    out->drained_bytes -= std::min(out->drained_bytes, bytes);
    drop[i] = 1;
    total -= sz;
    shed += sz;
    if (chunks_shed != nullptr) ++*chunks_shed;
  }
  if (shed == 0) return 0;
  std::vector<DrainChunk> kept;
  kept.reserve(out->to_sp.size());
  for (size_t i = 0; i < out->to_sp.size(); ++i) {
    if (!drop[i]) kept.push_back(std::move(out->to_sp[i]));
  }
  out->to_sp = std::move(kept);
  return shed;
}

}  // namespace jarvis::core
