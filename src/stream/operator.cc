#include "stream/operator.h"

#include "ser/buffer.h"
#include "stream/columnar.h"

namespace jarvis::stream {

std::string_view OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kWindow:
      return "Window";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kMap:
      return "Map";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kGroupAggregate:
      return "GroupAggregate";
    case OpKind::kProject:
      return "Project";
  }
  return "Unknown";
}

Status Operator::Process(Record&& rec, RecordBatch* out) {
  stats_.records_in += 1;
  if (count_bytes_) stats_.bytes_in += WireSize(rec);
  const size_t first = out->size();
  JARVIS_RETURN_IF_ERROR(DoProcess(std::move(rec), out));
  CountOutputs(*out, first);
  return Status::OK();
}

Status Operator::ProcessBatch(RecordBatch&& batch, RecordBatch* out) {
  stats_.records_in += batch.size();
  if (count_bytes_) stats_.bytes_in += BatchBytes(batch);
  const size_t first = out->size();
  JARVIS_RETURN_IF_ERROR(DoProcessBatch(std::move(batch), out));
  CountOutputs(*out, first);
  return Status::OK();
}

Status Operator::ProcessBatchInPlace(RecordBatch* batch) {
  stats_.records_in += batch->size();
  if (count_bytes_) stats_.bytes_in += BatchBytes(*batch);
  JARVIS_RETURN_IF_ERROR(DoProcessBatchInPlace(batch));
  stats_.records_out += batch->size();
  if (count_bytes_) stats_.bytes_out += BatchBytes(*batch);
  return Status::OK();
}

Status Operator::ProcessColumnar(ColumnarBatch* batch) {
  stats_.records_in += batch->num_rows();
  // RowWireBytes is the record-format byte count, so byte-level stats (and
  // the relay ratios profiling derives from them) are identical to the row
  // paths'.
  if (count_bytes_) stats_.bytes_in += batch->RowWireBytes();
  JARVIS_RETURN_IF_ERROR(DoProcessColumnar(batch));
  stats_.records_out += batch->num_rows();
  if (count_bytes_) stats_.bytes_out += batch->RowWireBytes();
  return Status::OK();
}

Status Operator::ExportStateDelta(ser::BufferWriter* w, StateExport mode) {
  (void)mode;
  if (IsStateful()) {
    return Status::Unimplemented(name_ +
                                 ": stateful operator without ExportStateDelta");
  }
  w->PutVarU64(0);  // tombstones
  w->PutVarU64(0);  // sections
  return Status::OK();
}

Status Operator::RestoreState(ser::BufferReader* r) {
  uint64_t n_tombstones = 0;
  JARVIS_RETURN_IF_ERROR(r->GetVarU64(&n_tombstones));
  int64_t key = 0;
  for (uint64_t i = 0; i < n_tombstones; ++i) {
    JARVIS_RETURN_IF_ERROR(r->GetVarI64(&key));
  }
  uint64_t n_sections = 0;
  JARVIS_RETURN_IF_ERROR(r->GetVarU64(&n_sections));
  for (uint64_t i = 0; i < n_sections; ++i) {
    JARVIS_RETURN_IF_ERROR(r->GetVarI64(&key));
    uint64_t len = 0;
    JARVIS_RETURN_IF_ERROR(r->GetVarU64(&len));
    if (len > r->remaining()) {
      return Status::SerializationError(name_ + ": state section overruns");
    }
    r->Advance(len);
  }
  if (IsStateful()) {
    return Status::Unimplemented(name_ +
                                 ": stateful operator without RestoreState");
  }
  if (n_tombstones != 0 || n_sections != 0) {
    return Status::SerializationError(name_ +
                                      ": state delta for a stateless operator");
  }
  return Status::OK();
}

uint64_t Operator::BatchBytes(const RecordBatch& batch) {
  uint64_t bytes = 0;
  for (const Record& rec : batch) bytes += WireSize(rec);
  return bytes;
}

void Operator::CountOutputs(const RecordBatch& out, size_t first) {
  if (count_bytes_) {
    for (size_t i = first; i < out.size(); ++i) {
      stats_.bytes_out += WireSize(out[i]);
    }
  }
  stats_.records_out += out.size() - first;
}

}  // namespace jarvis::stream
