// Deterministic unit coverage for the columnar data plane: ColumnarBatch
// row<->column conversion and structural edits, typed-predicate semantics on
// both the row and columnar evaluators, the columnar operator paths, and the
// column-wise drain wire format (RLE flags, delta varints, dictionary
// strings). The randomized cross-checks against the row path live in
// batch_equivalence_test.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ser/buffer.h"
#include "stream/columnar.h"
#include "stream/ops.h"
#include "stream/pipeline.h"
#include "stream/predicate.h"
#include "stream/record.h"
#include "testing/test_util.h"

namespace jarvis::stream {
namespace {

using jarvis::testing::MakeRecord;
using jarvis::testing::V;

Schema KvsSchema() {
  return Schema::Of({{"k", ValueType::kInt64},
                     {"v", ValueType::kDouble},
                     {"s", ValueType::kString}});
}

Record Partial(Micros t) {
  Record r = MakeRecord(t, 1, 2);
  r.kind = RecordKind::kPartial;
  return r;
}

/// Mixed batch: dense rows, a kPartial row, and a schema-divergent row.
RecordBatch MixedBatch() {
  RecordBatch batch;
  batch.push_back(MakeRecord(100, 1, 1.5, "a"));
  batch.push_back(Partial(150));
  batch.push_back(MakeRecord(200, 2, 2.5, "b"));
  batch.push_back(MakeRecord(250, "divergent"));  // wrong arity/types
  batch.push_back(MakeRecord(300, 3, 3.5, "a"));
  return batch;
}

TEST(ColumnarBatchTest, FromRowsSplitsDenseAndFallback) {
  ColumnarBatch cb = ColumnarBatch::FromRows(MixedBatch(), KvsSchema());
  EXPECT_EQ(cb.num_rows(), 5u);
  EXPECT_EQ(cb.num_dense(), 3u);
  EXPECT_EQ(cb.num_fallback(), 2u);
  EXPECT_EQ(cb.column(0).i64, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(cb.column(1).f64, (std::vector<double>{1.5, 2.5, 3.5}));
  EXPECT_EQ(cb.column(2).str, (std::vector<std::string>{"a", "b", "a"}));
  EXPECT_EQ(cb.event_times(), (std::vector<Micros>{100, 200, 300}));
  EXPECT_EQ(cb.density(), (std::vector<uint8_t>{1, 0, 1, 0, 1}));
}

TEST(ColumnarBatchTest, MoveToRowsRestoresOriginalOrderExactly) {
  const RecordBatch original = MixedBatch();
  RecordBatch copy = original;
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(copy), KvsSchema());
  RecordBatch back;
  cb.MoveToRows(&back);
  EXPECT_EQ(back, original);
  EXPECT_TRUE(cb.empty());
}

TEST(ColumnarBatchTest, RowWireBytesMatchesRowPathWireSize) {
  const RecordBatch original = MixedBatch();
  uint64_t want = 0;
  for (const Record& r : original) want += WireSize(r);
  RecordBatch copy = original;
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(copy), KvsSchema());
  EXPECT_EQ(cb.RowWireBytes(), want);
}

TEST(ColumnarBatchTest, RetainCompactsStably) {
  ColumnarBatch cb = ColumnarBatch::FromRows(MixedBatch(), KvsSchema());
  const std::vector<uint8_t> keep_dense = {1, 0, 1};  // drop k==2
  const std::vector<uint8_t> keep_fallback = {1, 0};  // drop divergent row
  cb.Retain(keep_dense.data(), keep_fallback.data());
  EXPECT_EQ(cb.num_rows(), 3u);
  EXPECT_EQ(cb.column(0).i64, (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(cb.density(), (std::vector<uint8_t>{1, 0, 1}));
  RecordBatch back;
  cb.MoveToRows(&back);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[1].kind, RecordKind::kPartial);
  EXPECT_EQ(back[2].i64(0), 3);
}

TEST(ColumnarBatchTest, SelectColumnsSwapsAndReordersColumns) {
  ColumnarBatch cb = ColumnarBatch::FromRows(MixedBatch(), KvsSchema());
  ASSERT_TRUE(cb.SelectColumns({2, 0}).ok());
  EXPECT_EQ(cb.num_columns(), 2u);
  EXPECT_EQ(cb.schema().field(0).name, "s");
  EXPECT_EQ(cb.schema().field(1).name, "k");
  EXPECT_EQ(cb.column(0).str, (std::vector<std::string>{"a", "b", "a"}));
  EXPECT_EQ(cb.column(1).i64, (std::vector<int64_t>{1, 2, 3}));
}

TEST(ColumnarBatchTest, SelectColumnsRejectsOutOfRangeIndex) {
  ColumnarBatch cb = ColumnarBatch::FromRows(MixedBatch(), KvsSchema());
  EXPECT_EQ(cb.SelectColumns({0, 7}).code(), StatusCode::kOutOfRange);
}

TEST(ColumnarBatchTest, SplitFrontPopsPrefixInRowOrder) {
  const RecordBatch original = MixedBatch();
  RecordBatch copy = original;
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(copy), KvsSchema());
  ColumnarBatch front;
  cb.SplitFront(3, &front);
  EXPECT_EQ(front.num_rows(), 3u);
  EXPECT_EQ(cb.num_rows(), 2u);
  RecordBatch head, tail;
  front.MoveToRows(&head);
  cb.MoveToRows(&tail);
  RecordBatch joined = std::move(head);
  for (Record& r : tail) joined.push_back(std::move(r));
  EXPECT_EQ(joined, original);
}

TEST(ColumnarBatchTest, SplitFrontWholeBatchSwaps) {
  const RecordBatch original = MixedBatch();
  RecordBatch copy = original;
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(copy), KvsSchema());
  ColumnarBatch front;
  cb.SplitFront(99, &front);
  EXPECT_TRUE(cb.empty());
  RecordBatch back;
  front.MoveToRows(&back);
  EXPECT_EQ(back, original);
}

TEST(ColumnarBatchTest, PartitionSplitsByDecisionInArrivalOrder) {
  const RecordBatch original = MixedBatch();
  RecordBatch copy = original;
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(copy), KvsSchema());
  ColumnarBatch forwarded(KvsSchema());
  RecordBatch drained;
  const std::vector<uint8_t> decisions = {1, 0, 0, 1, 1};
  cb.Partition(decisions.data(), &forwarded, &drained);
  EXPECT_TRUE(cb.empty());
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], original[1]);
  EXPECT_EQ(drained[1], original[2]);
  RecordBatch fwd;
  forwarded.MoveToRows(&fwd);
  ASSERT_EQ(fwd.size(), 3u);
  EXPECT_EQ(fwd[0], original[0]);
  EXPECT_EQ(fwd[1], original[3]);
  EXPECT_EQ(fwd[2], original[4]);
}

// ---------------------------------------------------------------------------
// Typed predicates
// ---------------------------------------------------------------------------

TEST(TypedPredicateTest, RowEvalComparisonSemantics) {
  const Record r = MakeRecord(0, 5, 2.5, "m");
  EXPECT_TRUE(EvalPredicate(PredI64(0, CmpOp::kEq, 5), r));
  EXPECT_FALSE(EvalPredicate(PredI64(0, CmpOp::kNe, 5), r));
  EXPECT_TRUE(EvalPredicate(PredI64(0, CmpOp::kLt, 6), r));
  EXPECT_FALSE(EvalPredicate(PredI64(0, CmpOp::kLt, 5), r));
  EXPECT_TRUE(EvalPredicate(PredI64(0, CmpOp::kLe, 5), r));
  EXPECT_TRUE(EvalPredicate(PredI64(0, CmpOp::kGt, 4), r));
  EXPECT_TRUE(EvalPredicate(PredI64(0, CmpOp::kGe, 5), r));
  EXPECT_TRUE(EvalPredicate(PredF64(1, CmpOp::kLt, 3.0), r));
  EXPECT_TRUE(EvalPredicate(PredStr(2, CmpOp::kGe, "a"), r));
}

TEST(TypedPredicateTest, MismatchedLeavesFailClosed) {
  const Record r = MakeRecord(0, 5, 2.5, "m");
  // Field index out of range and type mismatch both evaluate false, never
  // error: divergent rows must fall out of a filter, not crash it.
  EXPECT_FALSE(EvalPredicate(PredI64(9, CmpOp::kEq, 5), r));
  EXPECT_FALSE(EvalPredicate(PredF64(0, CmpOp::kEq, 5.0), r));
  EXPECT_FALSE(EvalPredicate(PredStr(0, CmpOp::kEq, "5"), r));
}

TEST(TypedPredicateTest, CompositionSemantics) {
  const Record r = MakeRecord(0, 5, 2.5, "m");
  EXPECT_TRUE(EvalPredicate(PredAnd({PredI64(0, CmpOp::kEq, 5),
                                     PredF64(1, CmpOp::kLt, 3.0)}),
                            r));
  EXPECT_FALSE(EvalPredicate(PredAnd({PredI64(0, CmpOp::kEq, 5),
                                      PredF64(1, CmpOp::kGt, 3.0)}),
                             r));
  EXPECT_TRUE(EvalPredicate(PredOr({PredI64(0, CmpOp::kEq, 7),
                                    PredStr(2, CmpOp::kEq, "m")}),
                            r));
  EXPECT_TRUE(EvalPredicate(PredAnd({}), r));
  EXPECT_FALSE(EvalPredicate(PredOr({}), r));
}

TEST(TypedPredicateTest, ValidateChecksFieldsAndTypes) {
  const Schema schema = KvsSchema();
  EXPECT_TRUE(ValidatePredicate(PredI64(0, CmpOp::kEq, 1), schema).ok());
  EXPECT_TRUE(ValidatePredicate(
                  PredAnd({PredF64(1, CmpOp::kLt, 1.0),
                           PredOr({PredStr(2, CmpOp::kEq, "x")})}),
                  schema)
                  .ok());
  EXPECT_EQ(ValidatePredicate(PredI64(3, CmpOp::kEq, 1), schema).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidatePredicate(PredF64(0, CmpOp::kEq, 1.0), schema).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ValidatePredicate(PredAnd({PredStr(1, CmpOp::kEq, "x")}), schema).code(),
      StatusCode::kInvalidArgument);
}

TEST(TypedPredicateTest, ColumnarEvalMatchesRowEvalOnDenseRows) {
  RecordBatch rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back(MakeRecord(i, i % 7, i * 0.5, i % 2 ? "odd" : "even"));
  }
  const TypedPredicate pred =
      PredOr({PredAnd({PredI64(0, CmpOp::kGe, 2), PredF64(1, CmpOp::kLt, 8.0)}),
              PredStr(2, CmpOp::kEq, "even")});
  std::vector<uint8_t> want;
  for (const Record& r : rows) {
    want.push_back(EvalPredicate(pred, r) ? 1 : 0);
  }
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(rows), KvsSchema());
  std::vector<uint8_t> sel;
  std::vector<std::vector<uint8_t>> pool;
  EvalPredicateColumnar(pred, cb, &sel, &pool);
  EXPECT_EQ(sel, want);
}

// ---------------------------------------------------------------------------
// Columnar operator paths
// ---------------------------------------------------------------------------

TEST(ColumnarOpsTest, TypedFilterColumnarMatchesRowPath) {
  const TypedPredicate pred = PredI64(0, CmpOp::kNe, 2);
  const RecordBatch input = MixedBatch();

  FilterOp row_op("f", KvsSchema(), pred);
  RecordBatch row_in = input, row_out;
  for (Record& r : row_in) {
    ASSERT_TRUE(row_op.Process(std::move(r), &row_out).ok());
  }

  FilterOp col_op("f", KvsSchema(), pred);
  RecordBatch col_in = input;
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(col_in), KvsSchema());
  ASSERT_TRUE(col_op.HasColumnarBatch());
  ASSERT_TRUE(col_op.ProcessColumnar(&cb).ok());
  RecordBatch col_out;
  cb.MoveToRows(&col_out);

  EXPECT_EQ(col_out, row_out);
  EXPECT_EQ(col_op.stats().records_in, row_op.stats().records_in);
  EXPECT_EQ(col_op.stats().records_out, row_op.stats().records_out);
  EXPECT_EQ(col_op.stats().bytes_in, row_op.stats().bytes_in);
  EXPECT_EQ(col_op.stats().bytes_out, row_op.stats().bytes_out);
}

TEST(ColumnarOpsTest, FunctionFilterHasNoColumnarPath) {
  FilterOp op("f", KvsSchema(), [](const Record&) { return true; });
  EXPECT_FALSE(op.HasColumnarBatch());
}

TEST(ColumnarOpsTest, WindowAndProjectColumnarMatchRowPath) {
  auto make_pipeline = [] {
    auto p = std::make_unique<Pipeline>();
    p->Add(std::make_unique<WindowOp>("w", KvsSchema(), Seconds(1)));
    p->Add(std::make_unique<FilterOp>("f", KvsSchema(),
                                      PredF64(1, CmpOp::kLt, 3.0)));
    p->Add(std::make_unique<ProjectOp>("p", KvsSchema(),
                                       std::vector<size_t>{2, 0}));
    return p;
  };
  RecordBatch input;
  for (int i = 0; i < 50; ++i) {
    input.push_back(
        MakeRecord(Seconds(1) * i / 10 + i, i % 5, i * 0.1, "h"));
  }
  input.push_back(Partial(42));

  auto row_pipe = make_pipeline();
  ASSERT_TRUE(row_pipe->FullyColumnar());
  RecordBatch row_in = input, row_out;
  ASSERT_TRUE(row_pipe->PushBatch(std::move(row_in), &row_out).ok());

  auto col_pipe = make_pipeline();
  RecordBatch col_in = input;
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(col_in), KvsSchema());
  ASSERT_TRUE(col_pipe->PushColumnar(&cb).ok());
  RecordBatch col_out;
  cb.MoveToRows(&col_out);

  EXPECT_EQ(col_out, row_out);
  for (size_t i = 0; i < row_pipe->size(); ++i) {
    EXPECT_EQ(col_pipe->op(i).stats().records_in,
              row_pipe->op(i).stats().records_in);
    EXPECT_EQ(col_pipe->op(i).stats().records_out,
              row_pipe->op(i).stats().records_out);
    EXPECT_EQ(col_pipe->op(i).stats().bytes_in,
              row_pipe->op(i).stats().bytes_in);
    EXPECT_EQ(col_pipe->op(i).stats().bytes_out,
              row_pipe->op(i).stats().bytes_out);
  }
}

TEST(ColumnarOpsTest, PipelineWithMapIsNotFullyColumnar) {
  Pipeline p;
  p.Add(std::make_unique<WindowOp>("w", KvsSchema(), Seconds(1)));
  p.Add(std::make_unique<MapOp>("m", KvsSchema(),
                                [](Record&& r, RecordBatch* out) {
                                  out->push_back(std::move(r));
                                  return Status::OK();
                                }));
  EXPECT_FALSE(p.FullyColumnar());
}

// ---------------------------------------------------------------------------
// Columnar wire format
// ---------------------------------------------------------------------------

TEST(ColumnarWireTest, RoundTripsMixedBatch) {
  const RecordBatch original = MixedBatch();
  RecordBatch copy = original;
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(copy), KvsSchema());
  ser::BufferWriter w;
  w.PutU8(0xEE);  // sentinel: encoded bytes must be position-exact
  const size_t bytes = SerializeColumnar(cb, &w);
  EXPECT_EQ(bytes, w.size() - 1);

  ser::BufferReader r(w.data());
  uint8_t sentinel = 0;
  ASSERT_TRUE(r.GetU8(&sentinel).ok());
  RecordBatch decoded;
  ASSERT_TRUE(DeserializeColumnar(&r, &decoded).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded, original);
}

TEST(ColumnarWireTest, RoundTripsEmptyBatch) {
  ColumnarBatch cb(KvsSchema());
  ser::BufferWriter w;
  SerializeColumnar(cb, &w);
  ser::BufferReader r(w.data());
  RecordBatch decoded;
  decoded.push_back(MakeRecord(1, 1));  // must be cleared by the decoder
  ASSERT_TRUE(DeserializeColumnar(&r, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
  EXPECT_TRUE(r.AtEnd());
}

/// Low-cardinality string columns must dictionary-encode below both the
/// plain columnar layout and the schema-elided batch format.
TEST(ColumnarWireTest, DictionaryEncodingShrinksLowCardinalityStrings) {
  const Schema schema =
      Schema::Of({{"host", ValueType::kString}, {"k", ValueType::kInt64}});
  RecordBatch rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(MakeRecord(i * 100, std::string("host-") +
                                           std::to_string(i % 4),
                              i));
  }
  const RecordBatch original = rows;
  ser::BufferWriter batch_w;
  SerializeBatch(original, schema, &batch_w);

  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(rows), schema);
  ser::BufferWriter col_w;
  SerializeColumnar(cb, &col_w);
  EXPECT_LT(col_w.size(), batch_w.size());

  ser::BufferReader r(col_w.data());
  RecordBatch decoded;
  ASSERT_TRUE(DeserializeColumnar(&r, &decoded).ok());
  EXPECT_EQ(decoded, original);
}

/// High-cardinality strings must fall back to the plain layout (and still
/// round-trip).
TEST(ColumnarWireTest, UniqueStringsUsePlainLayout) {
  const Schema schema = Schema::Of({{"id", ValueType::kString}});
  RecordBatch rows;
  for (int i = 0; i < 400; ++i) {
    rows.push_back(MakeRecord(i, std::string("unique-id-") +
                                     std::to_string(i * 7919)));
  }
  const RecordBatch original = rows;
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(rows), schema);
  ser::BufferWriter w;
  SerializeColumnar(cb, &w);
  ser::BufferReader r(w.data());
  RecordBatch decoded;
  ASSERT_TRUE(DeserializeColumnar(&r, &decoded).ok());
  EXPECT_EQ(decoded, original);
}

TEST(ColumnarWireTest, TruncatedInputFailsCleanly) {
  RecordBatch rows = MixedBatch();
  ColumnarBatch cb = ColumnarBatch::FromRows(std::move(rows), KvsSchema());
  ser::BufferWriter w;
  SerializeColumnar(cb, &w);
  RecordBatch decoded;
  for (size_t cut = 0; cut < w.size(); ++cut) {
    ser::BufferReader r(w.data().data(), cut);
    // Must fail (or in rare prefix-valid cases succeed) without UB; the
    // ASan/UBSan build verifies no out-of-bounds access.
    (void)DeserializeColumnar(&r, &decoded);
  }
}

TEST(ColumnarBatchTest, ColumnBornAppendMatchesRowAppend) {
  // Direct column writes (the generator/ingest fast path) must build the
  // exact batch AppendRow would.
  ColumnarBatch by_rows(KvsSchema());
  ColumnarBatch by_columns(KvsSchema());
  RecordBatch rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back(MakeRecord(100 * i, int64_t{i}, i * 0.5,
                              std::string("s") + std::to_string(i % 3)));
  }
  const RecordBatch original = rows;
  by_rows.AppendRows(std::move(rows));

  for (int i = 0; i < 20; ++i) {
    by_columns.column_mut(0).i64.push_back(i);
    by_columns.column_mut(1).f64.push_back(i * 0.5);
    by_columns.column_mut(2).str.push_back(std::string("s") +
                                           std::to_string(i % 3));
    by_columns.event_times().push_back(100 * i);
    by_columns.window_starts().push_back(-1);
  }
  by_columns.CommitDenseRows(20);

  EXPECT_EQ(by_columns.num_rows(), by_rows.num_rows());
  EXPECT_EQ(by_columns.RowWireBytes(), by_rows.RowWireBytes());
  RecordBatch a, b;
  by_columns.MoveToRows(&a);
  by_rows.MoveToRows(&b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, original);
}

TEST(ColumnarBatchTest, AppendBatchConcatenatesSameSchema) {
  RecordBatch rows = MixedBatch();
  RecordBatch expected = rows;
  RecordBatch tail = MixedBatch();
  for (const Record& r : tail) expected.push_back(r);

  ColumnarBatch a = ColumnarBatch::FromRows(std::move(rows), KvsSchema());
  ColumnarBatch b = ColumnarBatch::FromRows(std::move(tail), KvsSchema());
  a.AppendBatch(std::move(b));
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.num_rows(), expected.size());
  RecordBatch back;
  a.MoveToRows(&back);
  EXPECT_EQ(back, expected);
}

TEST(ColumnarBatchTest, AppendBatchIntoEmptyAdoptsBuffers) {
  ColumnarBatch dst(KvsSchema());
  ColumnarBatch src = ColumnarBatch::FromRows(MixedBatch(), KvsSchema());
  dst.AppendBatch(std::move(src));
  EXPECT_TRUE(src.empty());
  EXPECT_EQ(dst.num_rows(), 5u);
  RecordBatch back;
  dst.MoveToRows(&back);
  EXPECT_EQ(back, MixedBatch());
}

TEST(ColumnarBatchTest, AppendBatchSchemaMismatchDegradesToRows) {
  // A mismatched producer lands losslessly in the fallback lane (or dense
  // where it happens to conform) instead of corrupting column types.
  const Schema narrow = Schema::Of({{"k", ValueType::kInt64}});
  RecordBatch rows;
  rows.push_back(MakeRecord(10, int64_t{1}));
  rows.push_back(MakeRecord(20, int64_t{2}));
  const RecordBatch original = rows;
  ColumnarBatch src = ColumnarBatch::FromRows(std::move(rows), narrow);
  ColumnarBatch dst(KvsSchema());
  dst.AppendBatch(std::move(src));
  EXPECT_EQ(dst.num_rows(), 2u);
  EXPECT_EQ(dst.num_fallback(), 2u);  // 1-field rows diverge from Kvs
  RecordBatch back;
  dst.MoveToRows(&back);
  EXPECT_EQ(back, original);
}

TEST(ColumnarBatchTest, ColumnarPartitionMatchesRowDrainingPartition) {
  // The fully columnar split must route exactly like the row-draining one.
  const std::vector<uint8_t> decisions = {1, 0, 0, 1, 1};
  ColumnarBatch a = ColumnarBatch::FromRows(MixedBatch(), KvsSchema());
  ColumnarBatch fwd_a(KvsSchema());
  RecordBatch drained_rows;
  a.Partition(decisions.data(), &fwd_a, &drained_rows);

  ColumnarBatch b = ColumnarBatch::FromRows(MixedBatch(), KvsSchema());
  ColumnarBatch fwd_b(KvsSchema());
  ColumnarBatch drained_cols(KvsSchema());
  b.Partition(decisions.data(), &fwd_b, &drained_cols);

  RecordBatch fwd_rows_a, fwd_rows_b, drained_back;
  fwd_a.MoveToRows(&fwd_rows_a);
  fwd_b.MoveToRows(&fwd_rows_b);
  drained_cols.MoveToRows(&drained_back);
  EXPECT_EQ(fwd_rows_b, fwd_rows_a);
  EXPECT_EQ(drained_back, drained_rows);
}

TEST(ColumnarWireTest, BadVersionRejected) {
  ser::BufferWriter w;
  w.PutU8(0x7F);
  ser::BufferReader r(w.data());
  RecordBatch decoded;
  EXPECT_EQ(DeserializeColumnar(&r, &decoded).code(),
            StatusCode::kSerializationError);
}

}  // namespace
}  // namespace jarvis::stream
