#ifndef JARVIS_WORKLOADS_LOGANALYTICS_H_
#define JARVIS_WORKLOADS_LOGANALYTICS_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "stream/columnar.h"
#include "stream/record.h"

namespace jarvis::workloads {

/// Synthetic Helios-style analytics-cluster log stream (Scenario 2 /
/// Listing 3): unstructured text lines carrying tenant name, job running
/// time, and CPU/memory utilization, plus a fraction of unrelated lines that
/// the pattern filter drops.
struct LogAnalyticsConfig {
  uint64_t seed = 7;
  int64_t num_tenants = 50;
  double lines_per_sec = 2000.0;
  /// Fraction of lines that match none of the query patterns.
  double noise_fraction = 0.10;
};

class LogAnalyticsGenerator {
 public:
  explicit LogAnalyticsGenerator(LogAnalyticsConfig config);

  /// Single text field per record.
  static stream::Schema Schema();

  /// Log lines with event_time in [from, to), appended directly into
  /// `out`'s string column — the column-born ingest format of the native
  /// data plane; no row record exists at any point. `out` is rebound to
  /// Schema() if it carries a different schema.
  void GenerateColumnar(Micros from, Micros to, stream::ColumnarBatch* out);

  /// Row form of the same stream (thin wrapper over GenerateColumnar; the
  /// conversion is exact, so both forms are bit-identical).
  stream::RecordBatch Generate(Micros from, Micros to);

  /// Deterministic content of the i-th line overall (ground truth for
  /// tests): returns the formatted line.
  std::string LineAt(uint64_t index) const;
  bool LineIsNoise(uint64_t index) const;
  int64_t LineTenant(uint64_t index) const;

 private:
  LogAnalyticsConfig config_;
};

}  // namespace jarvis::workloads

#endif  // JARVIS_WORKLOADS_LOGANALYTICS_H_
