#include <gtest/gtest.h>

#include "core/runtime.h"

namespace jarvis::core {
namespace {

// A tiny analytic plant: 3 operators, spend = e3-weighted cost against a
// configurable budget, driving the runtime exactly like an executor would.
class Plant {
 public:
  explicit Plant(double budget) : budget_(budget) {}

  void set_budget(double b) { budget_ = b; }

  EpochObservation Observe(const std::vector<double>& lfs,
                           bool profiled) const {
    EpochObservation obs;
    obs.proxies.resize(3);
    const double kCosts[3] = {0.02, 0.13, 0.70};
    const double kRelayRec[3] = {1.0, 0.86, 0.5};
    const double kRelayBytes[3] = {1.0, 0.86, 0.30};
    double e = 1.0;
    double spend = 0.0;
    double cum = 1.0;
    for (int i = 0; i < 3; ++i) {
      obs.proxies[i].arrived = static_cast<uint64_t>(1000 * cum * e);
      e *= lfs.size() > static_cast<size_t>(i) ? lfs[i] : 0.0;
      const double want = kCosts[i] * cum * e;
      spend += want;
      obs.proxies[i].load_factor =
          lfs.size() > static_cast<size_t>(i) ? lfs[i] : 0.0;
      cum *= kRelayRec[i];
    }
    if (spend > budget_) {
      // Backlog at the most expensive operator.
      obs.proxies[2].pending = static_cast<uint64_t>(
          1000.0 * (spend - budget_) / 0.70);
      spend = budget_;
    }
    obs.cpu_budget_seconds = budget_;
    obs.cpu_spent_seconds = spend;
    obs.input_records = 1000;
    if (profiled) {
      obs.profiles_valid = true;
      obs.profiles.resize(3);
      for (int i = 0; i < 3; ++i) {
        obs.profiles[i].cost_per_record = kCosts[i] / 1000.0 /
                                          (i == 2 ? 0.86 : 1.0);
        obs.profiles[i].relay_records = kRelayRec[i];
        obs.profiles[i].relay_bytes = kRelayBytes[i];
        obs.profiles[i].sampled = 500;
      }
      // Adjust: profiles are per-record at the operator's own input.
      obs.profiles[0].cost_per_record = 0.02 / 1000;
      obs.profiles[1].cost_per_record = 0.13 / 1000;
      obs.profiles[2].cost_per_record = 0.70 / (1000 * 0.86);
    }
    return obs;
  }

 private:
  double budget_;
};

TEST(RuntimeTest, StartsAtZeroLoadFactors) {
  JarvisRuntime rt(3, RuntimeConfig{});
  Plant plant(0.5);
  auto d = rt.OnEpochEnd(plant.Observe({0, 0, 0}, false));
  EXPECT_EQ(d.load_factors, (std::vector<double>{0, 0, 0}));
  EXPECT_EQ(rt.phase(), Phase::kProbe);
}

TEST(RuntimeTest, DetectionNeedsConsecutiveNonStableEpochs) {
  RuntimeConfig config;
  config.detect_epochs = 3;
  JarvisRuntime rt(3, config);
  Plant plant(0.9);
  std::vector<double> lfs = {0, 0, 0};
  // Startup epoch counts as the first non-stable observation.
  auto d = rt.OnEpochEnd(plant.Observe(lfs, false));
  EXPECT_FALSE(d.request_profile);
  d = rt.OnEpochEnd(plant.Observe(lfs, false));  // idle #2
  EXPECT_FALSE(d.request_profile);
  d = rt.OnEpochEnd(plant.Observe(lfs, false));  // idle #3 -> profile
  EXPECT_TRUE(d.request_profile);
  EXPECT_EQ(rt.phase(), Phase::kProfile);
}

TEST(RuntimeTest, StableProbeResetsDetectionStreak) {
  RuntimeConfig config;
  config.detect_epochs = 3;
  JarvisRuntime rt(3, config);
  Plant plant(1.0);
  rt.OnEpochEnd(plant.Observe({0, 0, 0}, false));  // startup
  rt.OnEpochEnd(plant.Observe({0, 0, 0}, false));  // idle #2
  // A stable epoch (all local, enough budget) resets the streak.
  auto stable = plant.Observe({1, 1, 1}, false);
  rt.OnEpochEnd(stable);
  auto d = rt.OnEpochEnd(plant.Observe({0, 0, 0}, false));
  EXPECT_FALSE(d.request_profile);  // streak restarted at 1
}

TEST(RuntimeTest, FullAdaptationCycleConvergesWithAmpleBudget) {
  JarvisRuntime rt(3, RuntimeConfig{});
  Plant plant(1.0);
  std::vector<double> lfs = {0, 0, 0};
  bool profile = false;
  int epochs = 0;
  while (epochs < 30) {
    auto d = rt.OnEpochEnd(plant.Observe(lfs, profile));
    lfs = d.load_factors;
    profile = d.request_profile;
    ++epochs;
    if (rt.phase() == Phase::kProbe && rt.adaptations_completed() > 0) break;
  }
  EXPECT_GT(rt.adaptations_completed(), 0);
  // Full budget: the LP should take everything local.
  EXPECT_EQ(lfs, (std::vector<double>{1, 1, 1}));
  EXPECT_LE(rt.last_convergence_epochs(), 3);
}

TEST(RuntimeTest, ConvergesUnderTightBudgetWithFineTuning) {
  JarvisRuntime rt(3, RuntimeConfig{});
  Plant plant(0.6);
  std::vector<double> lfs = {0, 0, 0};
  bool profile = false;
  for (int epochs = 0; epochs < 40; ++epochs) {
    auto d = rt.OnEpochEnd(plant.Observe(lfs, profile));
    lfs = d.load_factors;
    profile = d.request_profile;
    if (rt.phase() == Phase::kProbe && rt.adaptations_completed() > 0) break;
  }
  EXPECT_GT(rt.adaptations_completed(), 0);
  // The converged plan must fit the budget up to the DrainedThres backlog
  // tolerance (the synthetic plant absorbs a few percent of over-demand in
  // tolerated pending records).
  const double spend = 0.02 * lfs[0] + 0.13 * lfs[0] * lfs[1] +
                       0.70 * lfs[0] * lfs[1] * lfs[2];
  EXPECT_LE(spend, 0.6 * 1.08);
  EXPECT_GT(spend, 0.3);  // and not be trivially empty
}

TEST(RuntimeTest, LpOnlyRequestsReprofileWhenNotStable) {
  RuntimeConfig config;
  config.use_fine_tune = false;
  JarvisRuntime rt(3, config);
  Plant plant(0.9);
  // Drive to Profile.
  std::vector<double> lfs = {0, 0, 0};
  bool profile = false;
  for (int i = 0; i < 3; ++i) {
    auto d = rt.OnEpochEnd(plant.Observe(lfs, profile));
    lfs = d.load_factors;
    profile = d.request_profile;
  }
  ASSERT_EQ(rt.phase(), Phase::kProfile);
  // Profile epoch -> Adapt with LP plan.
  auto d = rt.OnEpochEnd(plant.Observe(lfs, true));
  lfs = d.load_factors;
  ASSERT_EQ(rt.phase(), Phase::kAdapt);
  // Feed a congested observation: LP-only can only re-profile.
  auto obs = plant.Observe(lfs, false);
  obs.proxies[2].pending = 900;
  d = rt.OnEpochEnd(obs);
  EXPECT_TRUE(d.request_profile);
  EXPECT_EQ(rt.phase(), Phase::kProfile);
}

TEST(RuntimeTest, NoLpInitStartsFineTuningFromZeros) {
  RuntimeConfig config;
  config.use_lp_init = false;
  JarvisRuntime rt(3, config);
  Plant plant(0.9);
  std::vector<double> lfs = {0, 0, 0};
  bool profile = false;
  for (int i = 0; i < 3; ++i) {
    auto d = rt.OnEpochEnd(plant.Observe(lfs, profile));
    lfs = d.load_factors;
    profile = d.request_profile;
  }
  ASSERT_EQ(rt.phase(), Phase::kProfile);
  auto d = rt.OnEpochEnd(plant.Observe(lfs, true));
  // Without LP init the post-profile plan is still all-zero.
  EXPECT_EQ(d.load_factors, (std::vector<double>{0, 0, 0}));
  EXPECT_EQ(rt.phase(), Phase::kAdapt);
}

TEST(RuntimeTest, PhaseNames) {
  EXPECT_EQ(PhaseToString(Phase::kStartup), "Startup");
  EXPECT_EQ(PhaseToString(Phase::kProbe), "Probe");
  EXPECT_EQ(PhaseToString(Phase::kProfile), "Profile");
  EXPECT_EQ(PhaseToString(Phase::kAdapt), "Adapt");
}

TEST(RuntimeTest, MissingProfilesHandledGracefully) {
  JarvisRuntime rt(3, RuntimeConfig{});
  Plant plant(0.9);
  std::vector<double> lfs = {0, 0, 0};
  for (int i = 0; i < 3; ++i) rt.OnEpochEnd(plant.Observe(lfs, false));
  ASSERT_EQ(rt.phase(), Phase::kProfile);
  // Observation without profiles_valid: runtime must not crash and must
  // still move to Adapt.
  auto d = rt.OnEpochEnd(plant.Observe(lfs, false));
  EXPECT_EQ(rt.phase(), Phase::kAdapt);
  EXPECT_EQ(d.load_factors.size(), 3u);
}

}  // namespace
}  // namespace jarvis::core
