#ifndef JARVIS_CORE_DRAIN_WIRE_H_
#define JARVIS_CORE_DRAIN_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/source_executor.h"
#include "stream/record.h"

namespace jarvis::core {

// ---------------------------------------------------------------------------
// Drain wire frames
// ---------------------------------------------------------------------------
// The fault-tolerant drain path ships each DrainChunk as one self-contained
// frame a stream processor can verify, deduplicate, and NACK independently:
//
//   [u8 version][u32 header_crc][varint seq][varint entry_op][u8 lane][payload]
//
// The header checksum covers seq/entry_op/lane, so a flipped routing byte is
// caught before any record is pushed at the wrong operator; the payload is a
// v3 columnar frame or a v2 batch frame, each carrying its own payload
// checksum. `seq` is a per-source monotone sequence number — the SP delivers
// frames exactly once in order, detects gaps (dropped frames) and duplicates
// by sequence, and asks the source to retransmit from its retained copies.

inline constexpr uint8_t kWireFrameVersion = 1;

/// kCheckpoint (the wire's v4 addition) carries an epoch-aligned checkpoint
/// payload (see core/checkpoint.h) instead of records: same header, same
/// sequence numbering, same retransmit path, zero records for delivery
/// accounting.
enum class WireLane : uint8_t { kColumnar = 0, kRows = 1, kCheckpoint = 2 };

/// One drain chunk, encoded. `seq` and `records` are control-plane metadata
/// (the authoritative seq also rides inside the checksummed header; `records`
/// feeds delivery accounting and is not serialized).
struct WireFrame {
  uint32_t seq = 0;
  uint32_t records = 0;
  std::vector<uint8_t> bytes;
};

/// Decoded and checksum-verified frame header.
struct WireFrameHeader {
  uint32_t seq = 0;
  size_t entry_op = 0;
  WireLane lane = WireLane::kColumnar;
  /// Offset of the payload within WireFrame::bytes.
  size_t payload_offset = 0;
};

/// One epoch's drain on the wire. `first_seq`/`frame_count` are the epoch
/// manifest: transferred reliably (like a transport-level length header), so
/// the receiver knows when trailing frames were dropped and can NACK them
/// even though no later frame exposes the gap.
struct WireDrain {
  std::vector<WireFrame> frames;
  uint32_t first_seq = 0;
  uint32_t frame_count = 0;
  uint64_t wire_bytes = 0;
  uint64_t records = 0;
};

/// Encodes every drain chunk of `out` into wire frames, consuming the
/// chunks; `*next_seq` is the source's running sequence counter and advances
/// by one per frame.
WireDrain SerializeDrain(SourceEpochOutput* out, uint32_t* next_seq);

/// Encodes a sealed checkpoint payload (core/checkpoint.h) as a wire frame
/// on the checkpoint lane. Rides the same sequence space, manifest, and
/// retransmit machinery as data frames; `records` is 0 (checkpoints are
/// accounting-neutral).
WireFrame MakeCheckpointFrame(uint32_t seq, std::vector<uint8_t> payload);

/// Verifies and decodes a frame's header only — the cheap first step that
/// lets the receiver drop duplicates and detect misrouted/corrupt frames
/// before paying for payload decode. SerializationError on any mismatch.
Result<WireFrameHeader> PeekFrameHeader(const WireFrame& frame);

/// Decodes the frame payload into row records. The payload formats carry
/// their own checksums, so corruption surfaces as SerializationError, never
/// as UB or silently wrong records.
Status DecodeFramePayload(const WireFrame& frame, const WireFrameHeader& hdr,
                          stream::RecordBatch* rows);

}  // namespace jarvis::core

#endif  // JARVIS_CORE_DRAIN_WIRE_H_
