#include "core/building_block.h"

#include <limits>

namespace jarvis::core {

BuildingBlock::BuildingBlock(const query::CompiledQuery& query,
                             std::vector<SourceSpec> specs,
                             RuntimeConfig runtime_config) {
  sp_ = std::make_unique<SpExecutor>(query, specs.size());
  if (!sp_->Init().ok()) {
    init_status_ = sp_->Init();
    return;
  }
  for (SourceSpec& spec : specs) {
    auto executor = std::make_unique<SourceExecutor>(
        query, std::move(spec.cost_model), spec.options);
    if (!executor->Init().ok()) {
      init_status_ = executor->Init();
      return;
    }
    epoch_length_ = Seconds(spec.options.epoch_seconds);
    sources_.push_back(std::move(executor));
    runtimes_.push_back(std::make_unique<JarvisRuntime>(
        query.num_source_ops(), runtime_config));
    PerSource ps;
    ps.generate = std::move(spec.generate);
    state_.push_back(std::move(ps));
  }
}

Status BuildingBlock::RunEpoch(stream::RecordBatch* results) {
  JARVIS_RETURN_IF_ERROR(init_status_);
  const Micros from = now_;
  const Micros to = now_ + epoch_length_;
  now_ = to;
  for (size_t s = 0; s < sources_.size(); ++s) {
    if (!state_[s].alive) continue;
    sources_[s]->Ingest(state_[s].generate(from, to));
    JARVIS_ASSIGN_OR_RETURN(
        SourceEpochOutput out,
        sources_[s]->RunEpoch(to, state_[s].profile_next));
    const EpochObservation obs = out.observation;
    JARVIS_RETURN_IF_ERROR(sp_->Consume(s, std::move(out), results));
    JarvisRuntime::Decision d = runtimes_[s]->OnEpochEnd(obs);
    sources_[s]->SetLoadFactors(d.load_factors);
    if (d.flush_pending) sources_[s]->RequestFlush();
    state_[s].profile_next = d.request_profile;
  }
  return sp_->EndEpoch(results);
}

Result<size_t> BuildingBlock::CheckpointSource(size_t source_id,
                                               stream::RecordBatch* results) {
  JARVIS_RETURN_IF_ERROR(init_status_);
  if (source_id >= sources_.size()) {
    return Status::OutOfRange("unknown source");
  }
  JARVIS_ASSIGN_OR_RETURN(SourceEpochOutput out,
                          sources_[source_id]->Checkpoint(now_));
  const size_t shipped = out.DrainedRecords();
  JARVIS_RETURN_IF_ERROR(sp_->Consume(source_id, std::move(out), results));
  return shipped;
}

Status BuildingBlock::FailSource(size_t source_id) {
  JARVIS_RETURN_IF_ERROR(init_status_);
  if (source_id >= sources_.size()) {
    return Status::OutOfRange("unknown source");
  }
  state_[source_id].alive = false;
  // Release the failed source's watermark so surviving sources' windows
  // are not held open forever.
  SourceEpochOutput release;
  release.watermark = std::numeric_limits<Micros>::max() / 2;
  stream::RecordBatch scratch;
  return sp_->Consume(source_id, std::move(release), &scratch);
}

Status BuildingBlock::Finish(stream::RecordBatch* results) {
  JARVIS_RETURN_IF_ERROR(init_status_);
  const Micros far = now_ + Seconds(3600);
  for (size_t s = 0; s < sources_.size(); ++s) {
    if (!state_[s].alive) continue;
    JARVIS_ASSIGN_OR_RETURN(SourceEpochOutput out,
                            sources_[s]->RunEpoch(far, false));
    JARVIS_RETURN_IF_ERROR(sp_->Consume(s, std::move(out), results));
  }
  JARVIS_RETURN_IF_ERROR(sp_->EndEpoch(results));
  return sp_->Flush(results);
}

}  // namespace jarvis::core
