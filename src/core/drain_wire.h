#ifndef JARVIS_CORE_DRAIN_WIRE_H_
#define JARVIS_CORE_DRAIN_WIRE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/source_executor.h"
#include "stream/record.h"

namespace jarvis::core {

// ---------------------------------------------------------------------------
// Drain wire frames
// ---------------------------------------------------------------------------
// The drain path ships each DrainChunk as one self-contained frame a stream
// processor can verify, deduplicate, and NACK independently:
//
//   v1: [u8 1][u32 header_crc][varint seq][varint entry_op][u8 lane][payload]
//   v2: [u8 2][u32 header_crc][varint seq][varint entry_op][u8 lane]
//       [u8 codec][varint raw_len][compressed payload]
//
// The header checksum covers everything between it and the payload, so a
// flipped routing byte (or a flipped codec/length byte on a compressed
// frame) is caught before any decode work touches the payload. The v1
// payload is a v3 columnar frame, a v2 batch frame, or a v4 sealed
// checkpoint payload, each carrying its own payload checksum; a v2 frame
// wraps the same payload in an LZ4 block (codec 1) whose decompressed size
// must equal `raw_len` exactly — after decompression the inner payload
// checksum is verified as usual, so corruption inside the compressed block
// surfaces as SerializationError either at the LZ4 layer (malformed stream)
// or at the payload layer (checksum mismatch), never as UB.
//
// Compression is store-wins: the encoder emits a v2 frame only when the
// compressed payload is strictly smaller, so incompressible chunks (and all
// traffic when compression is off or the codec is not built in) travel as
// bit-identical v1 frames. `seq` is a per-source monotone sequence number —
// the SP delivers frames exactly once in order, detects gaps and duplicates
// by sequence, and asks the source to retransmit from its retained copies.

inline constexpr uint8_t kWireFrameVersion = 1;
inline constexpr uint8_t kWireFrameVersionCompressed = 2;

/// Payload codec of a frame. v1 frames are implicitly kStore; v2 frames
/// carry the codec byte explicitly (kLz4 is the only defined compressed
/// codec).
enum class WireCodec : uint8_t { kStore = 0, kLz4 = 1 };

/// kCheckpoint (the wire's v4 addition) carries an epoch-aligned checkpoint
/// payload (see core/checkpoint.h) instead of records: same header, same
/// sequence numbering, same retransmit path, zero records for delivery
/// accounting.
enum class WireLane : uint8_t { kColumnar = 0, kRows = 1, kCheckpoint = 2 };

/// One drain chunk, encoded. `seq` and `records` are control-plane metadata
/// (the authoritative seq also rides inside the checksummed header; `records`
/// feeds delivery accounting and is not serialized).
struct WireFrame {
  uint32_t seq = 0;
  uint32_t records = 0;
  std::vector<uint8_t> bytes;
};

/// Decoded and checksum-verified frame header.
struct WireFrameHeader {
  uint32_t seq = 0;
  size_t entry_op = 0;
  WireLane lane = WireLane::kColumnar;
  /// Payload codec: kStore for v1 frames, kLz4 for v2.
  WireCodec codec = WireCodec::kStore;
  /// Decompressed payload size (== the stored size for kStore frames).
  size_t raw_len = 0;
  /// Offset of the (possibly compressed) payload within WireFrame::bytes.
  size_t payload_offset = 0;
};

/// One epoch's drain on the wire. `first_seq`/`frame_count` are the epoch
/// manifest: transferred reliably (like a transport-level length header), so
/// the receiver knows when trailing frames were dropped and can NACK them
/// even though no later frame exposes the gap.
struct WireDrain {
  std::vector<WireFrame> frames;
  uint32_t first_seq = 0;
  uint32_t frame_count = 0;
  uint64_t wire_bytes = 0;
  uint64_t records = 0;
};

/// Wire encoder knobs, cached per BuildingBlock (see WireCodecFromEnv).
struct WireCodecOptions {
  /// Request LZ4 block compression of frame payloads (store-wins; a no-op
  /// when the codec was built out via -DJARVIS_WITH_LZ4=OFF).
  bool compress = false;
  /// Payloads below this size always store: the token/offset overhead of a
  /// tiny block cannot win, so skip the compressor call entirely.
  size_t min_bytes = 64;
};

/// Measured modeled-vs-wire byte accounting for one epoch's drain, keyed by
/// SP entry operator. `modeled` is the record-format byte volume the LP's
/// bandwidth term has always priced (RowWireBytes / WireSize sums); `wire`
/// is what the encoded frames actually occupy. Their ratio is the measured
/// bandwidth correction fed back into the planner (OperatorProfile::
/// wire_ratio).
struct WireByteProfile {
  struct Entry {
    uint64_t modeled = 0;
    uint64_t wire = 0;
  };
  std::vector<Entry> per_entry;  // indexed by sp_entry_op; grown on demand
  uint64_t modeled_total = 0;
  uint64_t wire_total = 0;
};

/// Encodes every drain chunk of `out` into wire frames, consuming the
/// chunks; `*next_seq` is the source's running sequence counter and advances
/// by one per frame. When `profile` is non-null the per-entry modeled and
/// wire byte totals of this drain are accumulated into it (profiling epochs
/// only — the modeled sizing pass is not free).
WireDrain SerializeDrain(SourceEpochOutput* out, uint32_t* next_seq,
                         const WireCodecOptions& codec = {},
                         WireByteProfile* profile = nullptr);

/// Encodes a sealed checkpoint payload (core/checkpoint.h) as a wire frame
/// on the checkpoint lane. Rides the same sequence space, manifest, and
/// retransmit machinery as data frames; `records` is 0 (checkpoints are
/// accounting-neutral).
WireFrame MakeCheckpointFrame(uint32_t seq, std::vector<uint8_t> payload,
                              const WireCodecOptions& codec = {});

/// Verifies and decodes a frame's header only — the cheap first step that
/// lets the receiver drop duplicates and detect misrouted/corrupt frames
/// before paying for payload decode. SerializationError on any mismatch.
Result<WireFrameHeader> PeekFrameHeader(const WireFrame& frame);

/// Resolves a frame's decompressed payload: v1 frames are viewed in place
/// (zero copy), v2 frames decompress into *scratch. SerializationError on a
/// malformed or implausibly sized compressed block.
Result<std::pair<const uint8_t*, size_t>> FramePayload(
    const WireFrame& frame, const WireFrameHeader& hdr,
    std::vector<uint8_t>* scratch);

/// Decodes the frame payload into row records. The payload formats carry
/// their own checksums, so corruption surfaces as SerializationError, never
/// as UB or silently wrong records.
Status DecodeFramePayload(const WireFrame& frame, const WireFrameHeader& hdr,
                          stream::RecordBatch* rows);

/// Decodes one data frame back into a DrainChunk: columnar-lane payloads
/// deserialize straight to column form (DeserializeColumnarBatch — the bulk
/// path decode workers run), row-lane payloads to the rows lane. Checkpoint
/// frames are rejected.
Status DecodeDrainChunk(const WireFrame& frame, const WireFrameHeader& hdr,
                        DrainChunk* chunk, std::vector<uint8_t>* scratch);

/// Decodes a whole epoch drain back into chunks (checkpoint frames are
/// skipped): the receive half of the bytes-end-to-end default path.
Status DecodeDrain(const WireDrain& wire, std::vector<DrainChunk>* to_sp);

/// Wire codec selection from the environment: JARVIS_WIRE_COMPRESS=1 (or
/// "on"/"true"/"yes") turns LZ4 payload compression on; default off.
WireCodecOptions WireCodecFromEnv();

}  // namespace jarvis::core

#endif  // JARVIS_CORE_DRAIN_WIRE_H_
