#ifndef JARVIS_SIM_CLUSTER_H_
#define JARVIS_SIM_CLUSTER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/strategy.h"
#include "sim/link.h"
#include "sim/query_model.h"
#include "sim/source_node.h"
#include "sim/sp_sim.h"

namespace jarvis::sim {

/// One core building block (Figure 4b): N data sources running the same
/// query under a partitioning strategy, bandwidth-limited links, and a
/// shared stream processor.
struct ClusterOptions {
  size_t num_sources = 1;
  double cpu_budget_fraction = 1.0;
  double epoch_seconds = 1.0;
  /// Per-source per-query bandwidth in Mbps (0 = unlimited). Used in the
  /// single-source throughput experiments (Fig. 7).
  double per_source_bandwidth_mbps = 0.0;
  /// Aggregate per-query link at the stream processor in Mbps (0 =
  /// unlimited). Used in the multi-source scalability experiments (Fig. 10).
  double shared_bandwidth_mbps = 0.0;
  double sp_cores = 64.0;
  double profile_error_magnitude = 0.3;
  /// Queue bound everywhere (backpressure); also the reporting latency
  /// bound from Section VI-A.
  double latency_bound_seconds = 5.0;
};

using StrategyFactory =
    std::function<std::unique_ptr<core::PartitioningStrategy>()>;

class ClusterSim {
 public:
  ClusterSim(QueryModel model, ClusterOptions options,
             const StrategyFactory& make_strategy);

  struct EpochMetrics {
    /// End-to-end completed input data, Mbps.
    double goodput_mbps = 0.0;
    /// Sum of worst local, network, and SP backlog delays.
    double latency_seconds = 0.0;
    /// Bytes that crossed the network this epoch, Mbps.
    double network_mbps = 0.0;
    /// Query state of source 0 (classified with default thresholds).
    core::QueryState state0 = core::QueryState::kStable;
    /// Phase of source 0's strategy (meaningful for Jarvis variants).
    core::Phase phase0 = core::Phase::kProbe;
    std::vector<double> lfs0;
  };

  EpochMetrics RunEpoch();

  struct Summary {
    double avg_goodput_mbps = 0.0;
    double median_latency_seconds = 0.0;
    double max_latency_seconds = 0.0;
    double avg_network_mbps = 0.0;
  };

  /// Runs warmup epochs (discarded) then measurement epochs (aggregated).
  Summary Run(int warmup_epochs, int measure_epochs);

  SourceNodeSim& source(size_t i) { return sources_[i]; }
  core::PartitioningStrategy& strategy(size_t i) { return *strategies_[i]; }
  size_t num_sources() const { return sources_.size(); }
  const QueryModel& model() const { return model_; }

 private:
  QueryModel model_;
  ClusterOptions options_;
  std::vector<SourceNodeSim> sources_;
  std::vector<std::unique_ptr<core::PartitioningStrategy>> strategies_;
  std::vector<bool> profile_next_;
  std::vector<LinkSim> per_source_links_;
  std::optional<LinkSim> shared_link_;
  SpSim sp_;
};

/// Max-min fair allocation of `capacity` across `demands` (the policy Jarvis
/// adopts for multiple queries on one node, Section IV-E).
std::vector<double> MaxMinFairShare(const std::vector<double>& demands,
                                    double capacity);

}  // namespace jarvis::sim

#endif  // JARVIS_SIM_CLUSTER_H_
