#ifndef JARVIS_CORE_OVERLOAD_H_
#define JARVIS_CORE_OVERLOAD_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/source_executor.h"
#include "stream/record.h"

namespace jarvis::core {

// ---------------------------------------------------------------------------
// Scripted traffic dynamics + overload control
// ---------------------------------------------------------------------------
// Monitoring traffic is adversarial in shape: flash bursts, diurnal ramps,
// key-skew flips, and source churn are precisely what the adaptive placement
// exists to absorb. This header holds both halves of the story:
//
//   * TrafficShaper — a seeded, scripted transform layered over the workload
//     generators (JARVIS_TRAFFIC, same idiom as JARVIS_FAULTS) that makes the
//     benign steady generators hostile on demand. Pure: the shaped batch is
//     a function of (plan, source, epoch, input batch) only, so a shaped run
//     is exactly replayable and bit-identical across thread counts.
//
//   * OverloadController — per-source pressure sampling at every epoch
//     barrier, walking a deterministic escalation ladder
//     steady → throttled → shedding → quarantined, with every decision a
//     pure function of the pressure snapshot, so recovery from overload is
//     as fingerprintable as recovery from faults. Shedding is watermark-safe
//     (whole drain chunks dropped at the source, oldest deferred input shed
//     first) and first-class in the accounting: the conservation invariant
//     widens to  sent == delivered + lost + shed + in_flight.

// ---------------------------------------------------------------------------
// Traffic plans
// ---------------------------------------------------------------------------

/// How the traffic misbehaves.
enum class TrafficKind : uint8_t {
  kBurst,  ///< flat rate multiplier `factor`x for `count` epochs
  kRamp,   ///< rate climbs linearly from ~1x to `factor`x across `count`
  kSkew,   ///< `factor`% of records rewrite int64 field `field` to one hot key
  kLeave,  ///< the source produces nothing for `count` epochs (rejoin after)
};

std::string_view TrafficKindToString(TrafficKind k);

/// One scripted traffic event at a (source, epoch) coordinate, active for
/// the epoch window [epoch, epoch + count).
struct TrafficEvent {
  TrafficKind kind = TrafficKind::kBurst;
  size_t source = 0;
  int64_t epoch = 0;
  /// Field index rewritten by kSkew.
  size_t field = 0;
  /// Epochs the event stays active.
  int count = 1;
  /// kBurst/kRamp: peak rate multiplier; kSkew: hot-key percentage.
  uint64_t factor = 0;  // 0 = kind default (burst/ramp 4, skew 50)

  bool operator==(const TrafficEvent&) const = default;
};

/// A complete traffic schedule plus the seed deriving every "random" choice
/// (which records replicate on a fractional multiplier, which rewrite to the
/// hot key). Spec grammar, round-tripped by Parse/ToString:
///
///   seed=N;kind@epoch:source[#field][xcount][*factor];...
///
/// e.g. "seed=7;burst@8:0x6*5;ramp@2:1x4*3;skew@5:2#1x2*80;leave@9:3x2".
struct TrafficPlan {
  uint64_t seed = 1;
  std::vector<TrafficEvent> events;

  static Result<TrafficPlan> Parse(std::string_view spec);
  std::string ToString() const;
  bool empty() const { return events.empty(); }
};

/// Applies a TrafficPlan to generator output. Const and stateless after
/// construction: safe to call from concurrent source tasks, and replaying an
/// epoch (crash recovery) reproduces the shaped batch bit for bit.
class TrafficShaper {
 public:
  explicit TrafficShaper(TrafficPlan plan) : plan_(std::move(plan)) {}

  /// Builds a shaper from the JARVIS_TRAFFIC environment variable.
  /// Returns nullptr when unset, an error when set but unparsable.
  static Result<std::unique_ptr<TrafficShaper>> FromEnv();

  /// Transforms one epoch's generated batch in place. Replication keeps
  /// copies adjacent to the original (event-time order — and therefore the
  /// watermark contract — is untouched); skew rewrites keys but never
  /// timestamps; leave empties the batch while the epoch still reports its
  /// watermark, so a left source holds nothing back.
  void Shape(size_t source, int64_t epoch, stream::RecordBatch* batch) const;

  /// Combined rate multiplier at (source, epoch); 1.0 when steady.
  double RateMultiplier(size_t source, int64_t epoch) const;

  /// True when a kLeave window suppresses this source's output entirely.
  bool Suppressed(size_t source, int64_t epoch) const;

  const TrafficPlan& plan() const { return plan_; }

 private:
  const TrafficPlan plan_;
};

// ---------------------------------------------------------------------------
// Overload control
// ---------------------------------------------------------------------------

/// The escalation ladder. Rungs are ordered: escalation moves at most one
/// rung per epoch (degrade-before-drop — the planner gets a chance to move
/// operators toward the source before the shedder fires), de-escalation
/// requires sustained calm.
enum class OverloadLevel : uint8_t {
  kSteady = 0,      ///< no intervention
  kThrottled = 1,   ///< per-epoch admission capped; overflow deferred
  kShedding = 2,    ///< + bounded defer buffer and drain-chunk shedding
  kQuarantined = 3, ///< ingress blackout: everything offered is shed
};

std::string_view OverloadLevelToString(OverloadLevel level);

/// One epoch's pressure signals for one source, sampled at the barrier.
struct PressureSample {
  uint64_t offered = 0;    ///< records waiting in the epoch input buffer
  uint64_t admitted = 0;   ///< records actually routed this epoch
  uint64_t deferred = 0;   ///< records left buffered for later epochs
  uint64_t shed = 0;       ///< records dropped this epoch (ingress + drain)
  uint64_t drained = 0;    ///< records shipped to the SP this epoch
  uint64_t pending = 0;    ///< records parked in source-side stage queues

  bool operator==(const PressureSample&) const = default;
};

/// What one source must do next epoch. A pure function of the controller
/// state; captured by value into the epoch task, traced for crash replay.
struct IngressDirective {
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  uint64_t admit_cap = kUnlimited;  ///< records routed per epoch
  uint64_t defer_cap = kUnlimited;  ///< records the input buffer may hold back
  uint64_t drain_cap = kUnlimited;  ///< records per epoch drain (chunk shed)
  double pressure = 0.0;            ///< fed into OperatorProfile::pressure
  OverloadLevel level = OverloadLevel::kSteady;

  bool operator==(const IngressDirective&) const = default;
};

/// Tuning for the controller. Defaults are conservative enough that steady
/// traffic (score ~1) never leaves kSteady, so enabling overload control on
/// a benign run is a no-op.
struct OverloadOptions {
  uint64_t seed = 1;
  /// Per-source per-epoch record capacity. 0 = learn an EWMA baseline from
  /// calm epochs (initialized from the first epoch's offered load).
  uint64_t source_capacity_records = 0;
  /// Modeled SP consume capacity (records/epoch) shared by all sources.
  /// 0 disables the SP-side pressure signal.
  uint64_t sp_capacity_records = 0;
  /// Pressure-score thresholds for the target rung (score 1.0 = at
  /// capacity). Escalation still walks one rung per epoch.
  double throttle_at = 1.5;
  double shed_at = 3.0;
  double quarantine_at = 8.0;
  /// De-escalate one rung after `calm_epochs` consecutive epochs with
  /// score < calm_below.
  double calm_below = 1.2;
  int calm_epochs = 2;
  /// Throttled admission cap = capacity * catchup (> 1 so the deferred
  /// backlog drains once the burst passes instead of persisting forever).
  double catchup = 1.5;
  /// Defer buffer = capacity * defer_epochs before the shedder fires.
  double defer_epochs = 2.0;
  /// Shedding-level drain cap = capacity * shed_headroom.
  double shed_headroom = 1.0;
  /// OperatorProfile::pressure contribution per rung (throttled = 1x,
  /// shedding = 2x, quarantined = 4x) — the degrade-before-drop signal the
  /// LP prices into its bandwidth term.
  double pressure_gain = 1.0;
};

/// Aggregate overload accounting; compared across thread counts alongside
/// FaultStats, so shedding itself is part of the determinism fingerprint.
struct OverloadStats {
  uint64_t records_shed_ingress = 0;
  uint64_t records_shed_drain = 0;
  uint64_t chunks_shed = 0;
  uint64_t throttled_epochs = 0;
  uint64_t shedding_epochs = 0;
  uint64_t quarantined_epochs = 0;
  uint64_t escalations = 0;
  uint64_t deescalations = 0;
  uint64_t max_deferred = 0;
  uint64_t max_sp_backlog = 0;

  bool operator==(const OverloadStats&) const = default;
};

/// Walks the escalation ladder from per-source pressure snapshots. All
/// methods run on the consumer thread at the epoch barrier in ascending
/// source order, so the controller's evolution is independent of worker
/// scheduling — threads 1 vs 4 see the same snapshots in the same order and
/// make bit-identical decisions.
class OverloadController {
 public:
  OverloadController(OverloadOptions opts, size_t num_sources);

  /// Feeds the modeled SP consume signal once per epoch, before the
  /// per-source ticks: `records` is what actually entered the SP this
  /// epoch; the modeled backlog is what capacity could not absorb.
  void NoteSpInflow(uint64_t records);

  /// One source's epoch tick. Consumes the barrier's pressure sample and
  /// returns the directive governing the source's NEXT epoch.
  IngressDirective Tick(size_t source, const PressureSample& sample);

  /// True when the last Tick escalated this source (the caller triggers a
  /// re-plan so placement adapts before the next rung is needed).
  bool EscalatedLastTick() const { return escalated_last_tick_; }

  void AddSource();

  OverloadLevel level(size_t source) const { return src_[source].level; }
  double last_score(size_t source) const { return src_[source].score; }
  uint64_t sp_backlog() const { return sp_backlog_; }
  const OverloadOptions& options() const { return opts_; }
  const OverloadStats& stats() const { return stats_; }
  OverloadStats& mutable_stats() { return stats_; }

 private:
  struct SourceState {
    OverloadLevel level = OverloadLevel::kSteady;
    int calm_streak = 0;
    double baseline = 0.0;  ///< learned capacity (EWMA over calm epochs)
    double score = 0.0;
  };

  IngressDirective DirectiveFor(const SourceState& st, double cap) const;

  OverloadOptions opts_;
  std::vector<SourceState> src_;
  uint64_t sp_backlog_ = 0;
  bool escalated_last_tick_ = false;
  OverloadStats stats_;
};

/// Watermark-safe, priority-ordered drain shedding: drops whole pure-data
/// columnar chunks — in ascending entry-operator order, so the records the
/// SP has done the least work for go first — until the drain holds at most
/// `drain_cap` records. Row-lane chunks may carry kPartial operator state or
/// watermark-bearing emissions and are never shed; checkpoint frames are
/// built after shedding and are unaffected. Subtracts the shed chunks' row
/// wire bytes from `out->drained_bytes`. Returns records shed and counts
/// dropped chunks into `*chunks_shed`.
uint64_t ShedDrainChunks(uint64_t drain_cap, SourceEpochOutput* out,
                         uint64_t* chunks_shed);

}  // namespace jarvis::core

#endif  // JARVIS_CORE_OVERLOAD_H_
