#include <gtest/gtest.h>

#include "core/source_executor.h"
#include "core/stepwise_adapt.h"
#include "query/query_builder.h"
#include "workloads/pingmesh.h"
#include "workloads/queries.h"

namespace jarvis::core {
namespace {

constexpr double kCostW = 1e-5;
constexpr double kCostF = 2e-5;
constexpr double kCostG = 1e-4;

query::CompiledQuery CompileS2S() {
  auto plan = workloads::MakeS2SProbeQuery();
  EXPECT_TRUE(plan.ok());
  auto compiled = query::Compile(std::move(plan).value());
  EXPECT_TRUE(compiled.ok());
  return std::move(compiled).value();
}

std::shared_ptr<const CostModel> S2SCosts() {
  return std::make_shared<FixedCostModel>(
      std::vector<double>{kCostW, kCostF, kCostG});
}

stream::RecordBatch ProbeBatch(int n, Micros t0 = 0) {
  workloads::PingmeshConfig cfg;
  cfg.num_pairs = n;
  cfg.probe_interval = Seconds(1);
  workloads::PingmeshGenerator gen(cfg);
  stream::RecordBatch batch = gen.Generate(t0, t0 + Seconds(1));
  EXPECT_EQ(batch.size(), static_cast<size_t>(n));
  return batch;
}

TEST(SourceExecutorTest, AllLoadFactorsZeroDrainsRawInput) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({0, 0, 0});
  exec.Ingest(ProbeBatch(100));
  auto out = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->DrainedRecords(), 100u);
  for (const DrainRecord& dr : out->FlattenDrain()) {
    EXPECT_EQ(dr.sp_entry_op, 0u);
    EXPECT_EQ(dr.record.kind, stream::RecordKind::kData);
  }
  EXPECT_NEAR(out->observation.cpu_spent_seconds, 0.0, 1e-12);
}

TEST(SourceExecutorTest, FullLoadProcessesLocallyAndEmitsPartials) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(100));
  auto out = exec.RunEpoch(Seconds(20), false);
  ASSERT_TRUE(out.ok());
  // Everything processed locally; G+R exports partial rows on window close.
  ASSERT_GT(out->DrainedRecords(), 0u);
  for (const DrainRecord& dr : out->FlattenDrain()) {
    EXPECT_EQ(dr.record.kind, stream::RecordKind::kPartial);
    EXPECT_EQ(dr.sp_entry_op, 2u);  // merged into the SP's G+R
  }
  EXPECT_GT(out->observation.cpu_spent_seconds, 0.0);
}

TEST(SourceExecutorTest, PartialLoadFactorSplitsAtTheRightProxy) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 0.5});
  exec.Ingest(ProbeBatch(200));
  auto out = exec.RunEpoch(Seconds(20), false);
  ASSERT_TRUE(out.ok());
  size_t drained_at_2 = 0, partials = 0;
  for (const DrainRecord& dr : out->FlattenDrain()) {
    if (dr.record.kind == stream::RecordKind::kData) {
      EXPECT_EQ(dr.sp_entry_op, 2u);  // drained before the G+R operator
      ++drained_at_2;
    } else {
      ++partials;
    }
  }
  // The filter keeps ~86%, half of which is drained.
  const auto& proxies = out->observation.proxies;
  EXPECT_EQ(proxies[2].drained, drained_at_2);
  EXPECT_NEAR(static_cast<double>(drained_at_2),
              0.5 * static_cast<double>(proxies[2].arrived), 1.0);
  EXPECT_GT(partials, 0u);
}

TEST(SourceExecutorTest, BudgetExhaustionLeavesPendingRecords) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutorOptions opts;
  // Budget fits W+F for 1000 records but only a fraction of G+R:
  // 1000*(1e-5+2e-5) = 0.03; G+R needs ~860*1e-4 = 0.086.
  opts.cpu_budget_fraction = 0.05;
  SourceExecutor exec(q, S2SCosts(), opts);
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(1000));
  auto out = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->observation.proxies[2].pending, 0u);
  EXPECT_LE(out->observation.cpu_spent_seconds, 0.05 + 1e-9);
  EXPECT_EQ(ClassifyQueryState(out->observation, StepwiseConfig{}),
            QueryState::kCongested);
}

TEST(SourceExecutorTest, PendingRecordsCarryOverToNextEpoch) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutorOptions opts;
  opts.cpu_budget_fraction = 0.05;
  SourceExecutor exec(q, S2SCosts(), opts);
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(1000));
  auto first = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(first.ok());
  const uint64_t pending = first->observation.proxies[2].pending;
  ASSERT_GT(pending, 0u);
  // No new input: the backlog drains in the next epoch.
  auto second = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->observation.proxies[2].pending, pending);
  EXPECT_GT(second->observation.cpu_spent_seconds, 0.0);
}

TEST(SourceExecutorTest, ProfileModeProducesProfiles) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(1000));
  auto out = exec.RunEpoch(Seconds(1), true);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->observation.profiles_valid);
  ASSERT_EQ(out->observation.profiles.size(), 3u);
  // Relay of the filter is the 14% error drop.
  EXPECT_NEAR(out->observation.profiles[1].relay_records, 0.86, 0.05);
  // Full coverage => exact costs.
  EXPECT_NEAR(out->observation.profiles[0].cost_per_record, kCostW, 1e-12);
}

TEST(SourceExecutorTest, UndersampledProfileUnderestimatesCost) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutorOptions opts;
  opts.cpu_budget_fraction = 0.05;  // cannot process everything
  opts.profile_error_magnitude = 0.4;
  SourceExecutor exec(q, S2SCosts(), opts);
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(2000));
  auto out = exec.RunEpoch(Seconds(1), true);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->observation.profiles_valid);
  // G+R could not see all records: its estimate is biased low.
  EXPECT_LT(out->observation.profiles[2].cost_per_record, kCostG);
}

TEST(SourceExecutorTest, DrainedBytesAccounted) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({0, 0, 0});
  exec.Ingest(ProbeBatch(10));
  auto out = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(out.ok());
  const uint64_t reported = out->drained_bytes;
  uint64_t expected = 0;
  for (const DrainRecord& dr : out->FlattenDrain()) {
    expected += stream::WireSize(dr.record);
  }
  EXPECT_EQ(reported, expected);
}

TEST(SourceExecutorTest, SetCpuBudgetTakesEffect) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutorOptions opts;
  opts.cpu_budget_fraction = 0.05;
  SourceExecutor exec(q, S2SCosts(), opts);
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(1000));
  auto constrained = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(constrained.ok());
  EXPECT_GT(constrained->observation.proxies[2].pending, 0u);

  exec.SetCpuBudget(1.0);
  exec.Ingest(ProbeBatch(1000, Seconds(1)));
  auto relaxed = exec.RunEpoch(Seconds(2), false);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->observation.proxies[2].pending, 0u);
}

TEST(SourceExecutorTest, ObservationInputRecordsMatchesIngest) {
  query::CompiledQuery q = CompileS2S();
  SourceExecutor exec(q, S2SCosts(), SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.Ingest(ProbeBatch(123));
  auto out = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->observation.input_records, 123u);
}

// ---------------------------------------------------------------------------
// Columnar data plane: a stateless source pipeline (Window -> typed Filter
// -> Project) runs entirely on ColumnarBatch stage queues. Everything the
// executor reports — drain records and their entry tags, drained bytes,
// proxy observations, profiles — must be identical to the row plane.
// ---------------------------------------------------------------------------

query::CompiledQuery CompileStateless() {
  query::QueryBuilder q(workloads::PingmeshGenerator::Schema());
  q.Window(Seconds(1)).FilterI64Eq("errCode", 0);
  q.Project({"srcIp", "dstIp", "rtt"});
  auto plan = q.Build();
  EXPECT_TRUE(plan.ok());
  auto compiled = query::Compile(std::move(plan).value());
  EXPECT_TRUE(compiled.ok());
  return std::move(compiled).value();
}

void ExpectEpochOutputsEq(SourceEpochOutput& col, SourceEpochOutput& row) {
  // Chunking may differ between the planes (columnar slices vs row runs);
  // the flattened (entry, record) sequence must be bit-identical.
  std::vector<DrainRecord> col_drain = col.FlattenDrain();
  std::vector<DrainRecord> row_drain = row.FlattenDrain();
  ASSERT_EQ(col_drain.size(), row_drain.size());
  for (size_t i = 0; i < col_drain.size(); ++i) {
    EXPECT_EQ(col_drain[i].sp_entry_op, row_drain[i].sp_entry_op) << i;
    EXPECT_EQ(col_drain[i].record, row_drain[i].record) << i;
  }
  EXPECT_EQ(col.drained_bytes, row.drained_bytes);
  EXPECT_EQ(col.watermark, row.watermark);
  const EpochObservation& a = col.observation;
  const EpochObservation& b = row.observation;
  ASSERT_EQ(a.proxies.size(), b.proxies.size());
  for (size_t i = 0; i < a.proxies.size(); ++i) {
    EXPECT_EQ(a.proxies[i].arrived, b.proxies[i].arrived) << i;
    EXPECT_EQ(a.proxies[i].forwarded, b.proxies[i].forwarded) << i;
    EXPECT_EQ(a.proxies[i].drained, b.proxies[i].drained) << i;
    EXPECT_EQ(a.proxies[i].processed, b.proxies[i].processed) << i;
    EXPECT_EQ(a.proxies[i].pending, b.proxies[i].pending) << i;
  }
  EXPECT_DOUBLE_EQ(a.cpu_spent_seconds, b.cpu_spent_seconds);
  EXPECT_EQ(a.input_records, b.input_records);
  ASSERT_EQ(a.profiles_valid, b.profiles_valid);
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (size_t i = 0; i < a.profiles.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.profiles[i].relay_records, b.profiles[i].relay_records);
    EXPECT_DOUBLE_EQ(a.profiles[i].relay_bytes, b.profiles[i].relay_bytes);
    EXPECT_EQ(a.profiles[i].sampled, b.profiles[i].sampled);
  }
}

TEST(SourceExecutorTest, ColumnarPlaneMatchesRowPlane) {
  query::CompiledQuery q = CompileStateless();
  auto costs = std::make_shared<FixedCostModel>(
      std::vector<double>{kCostW, kCostF, kCostF});
  SourceExecutorOptions col_opts;
  col_opts.cpu_budget_fraction = 0.02;  // forces pending backpressure
  SourceExecutorOptions row_opts = col_opts;
  row_opts.enable_columnar = false;

  SourceExecutor col_exec(q, costs, col_opts);
  SourceExecutor row_exec(q, costs, row_opts);
  ASSERT_TRUE(col_exec.Init().ok());
  ASSERT_TRUE(row_exec.Init().ok());

  // Several epochs over varying load factors, profile and steady epochs
  // interleaved, with mid-stream backpressure and a reconfiguration flush.
  const std::vector<std::vector<double>> plans = {
      {1, 1, 1}, {1, 0.5, 1}, {0.7, 1, 0.3}, {1, 1, 1}};
  for (size_t e = 0; e < plans.size(); ++e) {
    col_exec.SetLoadFactors(plans[e]);
    row_exec.SetLoadFactors(plans[e]);
    if (e == 2) {
      col_exec.RequestFlush();
      row_exec.RequestFlush();
    }
    stream::RecordBatch in = ProbeBatch(400, Seconds(e));
    stream::RecordBatch in_copy = in;
    col_exec.Ingest(std::move(in));
    row_exec.Ingest(std::move(in_copy));
    const bool profile = e % 2 == 1;
    auto col_out = col_exec.RunEpoch(Seconds(e + 1), profile);
    auto row_out = row_exec.RunEpoch(Seconds(e + 1), profile);
    ASSERT_TRUE(col_out.ok());
    ASSERT_TRUE(row_out.ok());
    ExpectEpochOutputsEq(*col_out, *row_out);
  }

  // Checkpoint must ship identical pending state from either plane.
  auto col_cp = col_exec.Checkpoint(Seconds(9));
  auto row_cp = row_exec.Checkpoint(Seconds(9));
  ASSERT_TRUE(col_cp.ok());
  ASSERT_TRUE(row_cp.ok());
  ExpectEpochOutputsEq(*col_cp, *row_cp);
}

TEST(SourceExecutorTest, ColumnarIngestMatchesRowIngest) {
  // Column-born ingest (generator -> IngestColumnar) must be observably
  // identical to row ingest of the same records, epoch by epoch.
  query::CompiledQuery q = CompileStateless();
  auto costs = std::make_shared<FixedCostModel>(
      std::vector<double>{kCostW, kCostF, kCostF});
  SourceExecutorOptions opts;
  opts.cpu_budget_fraction = 0.03;  // some backpressure
  SourceExecutor native(q, costs, opts);
  SourceExecutor rows(q, costs, opts);
  ASSERT_TRUE(native.Init().ok());
  ASSERT_TRUE(rows.Init().ok());

  workloads::PingmeshConfig cfg;
  cfg.num_pairs = 300;
  cfg.probe_interval = Seconds(1);
  workloads::PingmeshGenerator gen(cfg);

  for (int e = 0; e < 4; ++e) {
    const std::vector<double> lfs = {1, 0.6, e % 2 ? 0.4 : 1.0};
    native.SetLoadFactors(lfs);
    rows.SetLoadFactors(lfs);
    stream::ColumnarBatch born(workloads::PingmeshGenerator::Schema());
    gen.GenerateColumnar(Seconds(e), Seconds(e + 1), &born);
    native.IngestColumnar(std::move(born));
    rows.Ingest(gen.Generate(Seconds(e), Seconds(e + 1)));
    auto native_out = native.RunEpoch(Seconds(e + 1), e == 1);
    auto rows_out = rows.RunEpoch(Seconds(e + 1), e == 1);
    ASSERT_TRUE(native_out.ok());
    ASSERT_TRUE(rows_out.ok());
    ExpectEpochOutputsEq(*native_out, *rows_out);
  }
}

TEST(SourceExecutorTest, NativeDrainShipsColumnarChunks) {
  // On a stateless pipeline with clean (conforming) input, nothing on the
  // default path materializes a row record: every drain chunk must be a
  // columnar slice, and its byte accounting must equal the row wire size.
  query::CompiledQuery q = CompileStateless();
  auto costs = std::make_shared<FixedCostModel>(
      std::vector<double>{kCostW, kCostF, kCostF});
  SourceExecutor exec(q, costs, SourceExecutorOptions{});
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 0.5, 0.25});
  stream::ColumnarBatch born(workloads::PingmeshGenerator::Schema());
  workloads::PingmeshConfig cfg;
  cfg.num_pairs = 200;
  cfg.probe_interval = Seconds(1);
  workloads::PingmeshGenerator gen(cfg);
  gen.GenerateColumnar(0, Seconds(1), &born);
  exec.IngestColumnar(std::move(born));
  auto out = exec.RunEpoch(Seconds(1), false);
  ASSERT_TRUE(out.ok());
  ASSERT_GT(out->DrainedRecords(), 0u);
  uint64_t bytes = 0;
  for (const DrainChunk& chunk : out->to_sp) {
    EXPECT_TRUE(chunk.rows.empty());
    EXPECT_FALSE(chunk.columns.empty());
    EXPECT_EQ(chunk.columns.num_fallback(), 0u);
    bytes += chunk.columns.RowWireBytes();
  }
  EXPECT_EQ(out->drained_bytes, bytes);
}

TEST(SourceExecutorTest, StatefulQueryStaysOnRowPlane) {
  // The S2S query ends in G+R (no columnar path), so the executor must run
  // the row plane even with columnar enabled — and behave as before.
  query::CompiledQuery q = CompileS2S();
  SourceExecutorOptions opts;
  ASSERT_TRUE(opts.enable_columnar);
  SourceExecutor exec(q, S2SCosts(), opts);
  ASSERT_TRUE(exec.Init().ok());
  exec.SetLoadFactors({1, 1, 1});
  exec.Ingest(ProbeBatch(100));
  auto out = exec.RunEpoch(Seconds(20), false);
  ASSERT_TRUE(out.ok());
  ASSERT_GT(out->DrainedRecords(), 0u);
  for (const DrainRecord& dr : out->FlattenDrain()) {
    EXPECT_EQ(dr.record.kind, stream::RecordKind::kPartial);
  }
}

}  // namespace
}  // namespace jarvis::core
