#ifndef JARVIS_COMMON_STATUS_H_
#define JARVIS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace jarvis {

/// Error categories used across the library. Mirrors the Arrow/RocksDB idiom:
/// operations that can fail return a Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kSerializationError,
  kInfeasible,  // LP / partitioning problems with an empty feasible region.
};

/// Human-readable name for a status code (e.g., "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. The OK state carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status SerializationError(std::string msg) {
    return Status(StatusCode::kSerializationError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Access to the value when !ok() is a programming
/// error and aborts in debug builds (undefined in release).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` from Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace jarvis

/// Propagates a non-OK Status out of the enclosing function.
#define JARVIS_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::jarvis::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs`.
#define JARVIS_ASSIGN_OR_RETURN(lhs, expr)           \
  auto JARVIS_CONCAT_(_res_, __LINE__) = (expr);     \
  if (!JARVIS_CONCAT_(_res_, __LINE__).ok())         \
    return JARVIS_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(JARVIS_CONCAT_(_res_, __LINE__)).value()

#define JARVIS_CONCAT_IMPL_(a, b) a##b
#define JARVIS_CONCAT_(a, b) JARVIS_CONCAT_IMPL_(a, b)

#endif  // JARVIS_COMMON_STATUS_H_
