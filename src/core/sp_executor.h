#ifndef JARVIS_CORE_SP_EXECUTOR_H_
#define JARVIS_CORE_SP_EXECUTOR_H_

#include <memory>
#include <vector>

#include "core/source_executor.h"
#include "query/compile.h"
#include "stream/pipeline.h"
#include "stream/watermark.h"

namespace jarvis::core {

/// The stream-processor side of one core building block (Figure 4b): runs
/// the full operator chain in finalize mode, resumes drained records at the
/// operator the control proxy tagged, merges partial aggregation state from
/// data sources, and advances event time by the *minimum* watermark across
/// sources (Section V).
class SpExecutor {
 public:
  SpExecutor(const query::CompiledQuery& query, size_t num_sources);

  Status Init() const { return init_status_; }

  /// Ingests one data source's epoch output. Columnar drain chunks whose
  /// resume suffix is fully columnar are pushed via Pipeline::PushColumnar
  /// — no row record materializes until the final results; chunks resuming
  /// at or before a stateful operator regroup to rows at this boundary.
  /// Final query results (closed windows, completed records) are appended
  /// to `results`.
  Status Consume(size_t source_id, SourceEpochOutput&& out,
                 stream::RecordBatch* results);

  /// Call after all sources delivered their epoch: advances the merged
  /// watermark, flushing windows that are closed across *all* sources.
  Status EndEpoch(stream::RecordBatch* results);

  /// End-of-run flush of any remaining operator state.
  Status Flush(stream::RecordBatch* results);

  /// Toggles byte-level stats on the replica pipeline. Off by default: the
  /// control plane's LP consumes only source-side relay ratios, so the SP
  /// replica was paying a per-record WireSize walk for counters nobody
  /// read. Enable for profiling epochs (or diagnostics) the same way the
  /// source executor does — byte ratios are exact whenever they're on.
  void SetByteAccounting(bool enabled) {
    if (pipeline_) pipeline_->SetByteAccounting(enabled);
  }

  /// Registers one more source (join churn): returns its id. The merged
  /// watermark holds until the newcomer's first epoch output arrives.
  size_t AddSource() { return merger_.AddInput(); }

  Micros merged_watermark() const { return merger_.Merged(); }

 private:
  std::unique_ptr<stream::Pipeline> pipeline_;
  stream::WatermarkMerger merger_;
  Micros applied_watermark_ = -1;
  Status init_status_;
  // columnar_from_[i]: every operator in [i, size()) has a native columnar
  // path, so a columnar chunk entering at i stays columnar to the results.
  std::vector<uint8_t> columnar_from_;
  // Reused per Consume call for chunks that must regroup to rows.
  stream::RecordBatch entry_batch_;
};

}  // namespace jarvis::core

#endif  // JARVIS_CORE_SP_EXECUTOR_H_
