// Traffic-dynamics bench: a scripted flash burst (>= 4x steady, 6 epochs)
// against the overload controller. Measures (a) the useful-delivery dip
// through the burst window relative to a steady baseline, (b) how many
// epochs the block needs after the burst before per-epoch delivery matches
// the baseline again (fig8-style reconvergence), (c) the shed fraction and
// ladder occupancy, and (d) the modeled SP backlog with control on vs off —
// the stall graceful degradation exists to prevent. The cost model is 1000x
// the usual so the edge CPU budget binds and a 20x burst exceeds what any
// placement can absorb; a milder burst is absorbed by adaptation alone.
// Rows are machine-parseable for scripts/run_benches.sh.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/building_block.h"
#include "core/overload.h"
#include "stream/record.h"
#include "workloads/pingmesh.h"
#include "workloads/queries.h"

namespace {

using jarvis::Micros;
using jarvis::Seconds;
using jarvis::core::BuildingBlock;
using jarvis::core::FaultStats;
using jarvis::core::FaultToleranceOptions;
using jarvis::core::FixedCostModel;
using jarvis::core::OverloadLevel;
using jarvis::core::OverloadOptions;
using jarvis::core::OverloadStats;
using jarvis::core::RuntimeConfig;
using jarvis::core::TrafficPlan;

constexpr size_t kSources = 4;
constexpr int kEpochs = 32;
constexpr int kBurstEpoch = 8;
constexpr int kBurstLen = 6;
constexpr int kBurstFactor = 20;
// 1000x the usual per-record costs: the 0.4-fraction epoch budget fits the
// steady volume comfortably and starves under the burst.
constexpr double kCostScale = 1000.0;

BuildingBlock::SourceSpec MakeSpec(uint64_t seed, int pairs) {
  BuildingBlock::SourceSpec spec;
  spec.cost_model = std::make_shared<FixedCostModel>(std::vector<double>{
      1e-6 * kCostScale, 2e-6 * kCostScale, 1e-5 * kCostScale});
  spec.options.cpu_budget_fraction = 0.4;
  jarvis::workloads::PingmeshConfig cfg;
  cfg.seed = seed;
  cfg.source_ip = static_cast<int64_t>(seed) * 100000;
  cfg.num_pairs = pairs;
  cfg.probe_interval = Seconds(1);
  auto gen = std::make_shared<jarvis::workloads::PingmeshGenerator>(cfg);
  spec.generate = [gen](Micros from, Micros to) {
    return gen->Generate(from, to);
  };
  return spec;
}

std::string BurstPlan() {
  std::string plan = "seed=7";
  for (const int s : {0, 2}) {
    plan += ";burst@" + std::to_string(kBurstEpoch) + ":" +
            std::to_string(s) + "x" + std::to_string(kBurstLen) + "*" +
            std::to_string(kBurstFactor);
  }
  return plan;
}

struct Run {
  std::vector<uint64_t> per_epoch_sent;
  std::vector<uint64_t> per_epoch_delivered;
  std::vector<uint64_t> per_epoch_shed;
  std::vector<uint64_t> sp_inflow;
  std::vector<OverloadLevel> levels;  // level(0) after every epoch
  FaultStats stats;
  OverloadStats overload;
  uint64_t in_flight = 0;
  double elapsed_s = 0.0;
};

Run RunOnce(const jarvis::query::CompiledQuery& q, const std::string& traffic,
            bool control_on, uint64_t sp_capacity) {
  std::vector<BuildingBlock::SourceSpec> specs;
  for (uint64_t s = 1; s <= kSources; ++s) specs.push_back(MakeSpec(s, 40));
  BuildingBlock block(q, std::move(specs), RuntimeConfig(), /*threads=*/1);
  if (!block.Init().ok()) std::abort();
  // Pinned explicitly — an empty plan for the steady run — so JARVIS_TRAFFIC
  // in the environment cannot contaminate the baseline under measurement.
  if (traffic.empty()) {
    block.SetTrafficPlan(TrafficPlan());
  } else {
    auto parsed = TrafficPlan::Parse(traffic);
    if (!parsed.ok()) std::abort();
    block.SetTrafficPlan(*std::move(parsed));
  }
  // Checkpointing forced off (-1, not 0: 0 reads JARVIS_CKPT_INTERVAL) so
  // the on/off/steady elapsed times compare the overload path alone.
  FaultToleranceOptions ft;
  ft.checkpoint_interval = -1;
  block.EnableFaultTolerance(ft);
  if (control_on) {
    OverloadOptions opts;
    opts.sp_capacity_records = sp_capacity;
    block.EnableOverloadControl(opts);
  }

  Run run;
  jarvis::stream::RecordBatch results;
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t prev_sent = 0, prev_delivered = 0, prev_shed = 0,
           prev_consumed = 0;
  for (int e = 0; e < kEpochs; ++e) {
    if (!block.RunEpoch(&results).ok()) std::abort();
    const FaultStats& fs = block.fault_stats();
    run.per_epoch_sent.push_back(fs.records_sent - prev_sent);
    prev_sent = fs.records_sent;
    run.per_epoch_delivered.push_back(fs.records_delivered - prev_delivered);
    prev_delivered = fs.records_delivered;
    run.per_epoch_shed.push_back(fs.records_shed - prev_shed);
    prev_shed = fs.records_shed;
    const uint64_t consumed = block.stream_processor().records_consumed();
    run.sp_inflow.push_back(consumed - prev_consumed);
    prev_consumed = consumed;
    run.levels.push_back(block.overload_level(0));
  }
  if (!block.Finish(&results).ok()) std::abort();
  run.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  run.stats = block.fault_stats();
  run.overload = block.overload_stats();
  run.in_flight = block.records_in_flight();
  return run;
}

/// Modeled SP backlog trajectory: inflow beyond a fixed per-epoch consume
/// capacity carries over — the same queue OverloadController models.
std::vector<uint64_t> SpBacklog(const std::vector<uint64_t>& inflow,
                                uint64_t capacity) {
  std::vector<uint64_t> backlog;
  uint64_t b = 0;
  for (const uint64_t in : inflow) {
    const uint64_t load = b + in;
    b = load > capacity ? load - capacity : 0;
    backlog.push_back(b);
  }
  return backlog;
}

void PrintRun(const char* section, const Run& r) {
  std::printf(
      "traffic_dynamics %s records_sent %llu records_delivered %llu "
      "records_shed %llu records_lost %llu in_flight %llu "
      "shed_fraction_pct %.2f elapsed_s %.4f\n",
      section, static_cast<unsigned long long>(r.stats.records_sent),
      static_cast<unsigned long long>(r.stats.records_delivered),
      static_cast<unsigned long long>(r.stats.records_shed),
      static_cast<unsigned long long>(r.stats.records_lost),
      static_cast<unsigned long long>(r.in_flight),
      r.stats.records_sent > 0
          ? 100.0 * static_cast<double>(r.stats.records_shed) /
                static_cast<double>(r.stats.records_sent)
          : 0.0,
      r.elapsed_s);
}

/// Goodput dip across the burst window: the fraction of records sent in the
/// window that were NOT delivered in it (shed or still deferred). Zero in
/// steady state; the controlled run pays this dip instead of wedging the SP.
double DipPct(const Run& run) {
  uint64_t sent = 0, delivered = 0;
  for (int e = kBurstEpoch; e < kBurstEpoch + kBurstLen && e < kEpochs; ++e) {
    sent += run.per_epoch_sent[e];
    delivered += run.per_epoch_delivered[e];
  }
  if (sent == 0) return 0.0;
  const double pct = 100.0 * (1.0 - static_cast<double>(delivered) /
                                        static_cast<double>(sent));
  return pct < 0.0 ? 0.0 : pct;  // backlog drains can overshoot sent
}

/// Fig8-style reconvergence: epochs past the burst onset until the run
/// settles for good — ladder back at steady, nothing shed, modeled SP
/// backlog empty — through the end of the run. kEpochs - kBurstEpoch means
/// it never settled.
int ReconvergeEpochs(const Run& run, const std::vector<uint64_t>& backlog) {
  int settle_from = kEpochs;
  for (int e = kEpochs - 1; e >= kBurstEpoch; --e) {
    if (run.levels[e] != OverloadLevel::kSteady || run.per_epoch_shed[e] > 0 ||
        backlog[e] > 0) {
      break;
    }
    settle_from = e;
  }
  return settle_from - kBurstEpoch;
}

}  // namespace

int main() {
  jarvis::bench::PrintHeader(
      "Traffic dynamics: flash burst, graceful degradation, reconvergence");

  auto plan_or = jarvis::workloads::MakeS2SProbeQuery();
  if (!plan_or.ok()) return 1;
  auto q_or = jarvis::query::Compile(std::move(plan_or).value());
  if (!q_or.ok()) return 1;
  const jarvis::query::CompiledQuery q = std::move(q_or).value();

  // Steady baseline (control armed but idle: steady traffic never leaves
  // kSteady, so this doubles as the overhead-free reference).
  const Run steady = RunOnce(q, "", /*control_on=*/true, 0);

  // SP consume capacity for the modeled-backlog comparison: twice the
  // steadiest pre-burst epoch — generous for 1x, hopeless for the burst.
  uint64_t steady_peak = 0;
  for (int e = 2; e < kBurstEpoch; ++e) {
    steady_peak = std::max(steady_peak, steady.sp_inflow[e]);
  }
  const uint64_t capacity = 2 * steady_peak;

  const std::string plan = BurstPlan();
  const Run on = RunOnce(q, plan, /*control_on=*/true, capacity);
  const Run off = RunOnce(q, plan, /*control_on=*/false, 0);

  std::printf(
      "traffic_dynamics config sources %zu epochs %d burst_epoch %d "
      "burst_len %d burst_factor %d sp_capacity %llu\n",
      kSources, kEpochs, kBurstEpoch, kBurstLen, kBurstFactor,
      static_cast<unsigned long long>(capacity));
  PrintRun("steady", steady);
  PrintRun("burst_on", on);
  PrintRun("burst_off", off);

  const std::vector<uint64_t> on_backlog = SpBacklog(on.sp_inflow, capacity);
  const std::vector<uint64_t> off_backlog = SpBacklog(off.sp_inflow, capacity);

  std::printf(
      "traffic_dynamics dip on_pct %.1f off_pct %.1f window_epochs %d\n",
      DipPct(on), DipPct(off), kBurstLen);
  std::printf("traffic_dynamics reconverge on_epochs %d off_epochs %d\n",
              ReconvergeEpochs(on, on_backlog),
              ReconvergeEpochs(off, off_backlog));
  std::printf(
      "traffic_dynamics backlog on_max %llu on_end %llu off_max %llu "
      "off_end %llu\n",
      static_cast<unsigned long long>(
          *std::max_element(on_backlog.begin(), on_backlog.end())),
      static_cast<unsigned long long>(on_backlog.back()),
      static_cast<unsigned long long>(
          *std::max_element(off_backlog.begin(), off_backlog.end())),
      static_cast<unsigned long long>(off_backlog.back()));
  std::printf(
      "traffic_dynamics ladder throttled_epochs %llu shedding_epochs %llu "
      "quarantined_epochs %llu escalations %llu deescalations %llu "
      "max_deferred %llu max_sp_backlog %llu\n",
      static_cast<unsigned long long>(on.overload.throttled_epochs),
      static_cast<unsigned long long>(on.overload.shedding_epochs),
      static_cast<unsigned long long>(on.overload.quarantined_epochs),
      static_cast<unsigned long long>(on.overload.escalations),
      static_cast<unsigned long long>(on.overload.deescalations),
      static_cast<unsigned long long>(on.overload.max_deferred),
      static_cast<unsigned long long>(on.overload.max_sp_backlog));

  // Fig8-style reconvergence curve of the controlled run: per-epoch useful
  // delivery, shed volume, and ladder rung.
  for (int e = 0; e < kEpochs; ++e) {
    std::printf(
        "traffic_dynamics curve epoch %d delivered %llu shed %llu level %d "
        "backlog %llu\n",
        e, static_cast<unsigned long long>(on.per_epoch_delivered[e]),
        static_cast<unsigned long long>(on.per_epoch_shed[e]),
        static_cast<int>(on.levels[e]),
        static_cast<unsigned long long>(on_backlog[e]));
  }
  return 0;
}
