#include <gtest/gtest.h>

#include "stream/watermark.h"

namespace jarvis::stream {
namespace {

TEST(WatermarkTest, UninitializedUntilAllInputsReport) {
  WatermarkMerger m(3);
  EXPECT_EQ(m.Merged(), WatermarkMerger::kUninitialized);
  m.Update(0, 100);
  m.Update(1, 200);
  EXPECT_EQ(m.Merged(), WatermarkMerger::kUninitialized);
  m.Update(2, 150);
  EXPECT_EQ(m.Merged(), 100);
}

TEST(WatermarkTest, MergedIsMinimum) {
  WatermarkMerger m(2);
  m.Update(0, 500);
  m.Update(1, 300);
  EXPECT_EQ(m.Merged(), 300);
  m.Update(1, 600);
  EXPECT_EQ(m.Merged(), 500);
}

TEST(WatermarkTest, StaleUpdatesIgnored) {
  WatermarkMerger m(1);
  m.Update(0, 100);
  m.Update(0, 50);  // stale
  EXPECT_EQ(m.Merged(), 100);
}

TEST(WatermarkTest, SingleInputTracksDirectly) {
  WatermarkMerger m(1);
  m.Update(0, 7);
  EXPECT_EQ(m.Merged(), 7);
}

TEST(WatermarkTest, ManyInputsAdvanceTogether) {
  WatermarkMerger m(10);
  for (size_t i = 0; i < 10; ++i) m.Update(i, 100 + static_cast<Micros>(i));
  EXPECT_EQ(m.Merged(), 100);
  for (size_t i = 0; i < 10; ++i) m.Update(i, 1000);
  EXPECT_EQ(m.Merged(), 1000);
}

}  // namespace
}  // namespace jarvis::stream
